// Delta codec for wave checkpoints — the core of the fast query path.
//
// Between referee rounds a wave is append-mostly: new entries land at the
// tails of the level lists and old entries expire from the fronts (or, for
// the distinct wave, are refreshed out of the middle). A delta therefore
// encodes the *edit* from a baseline checkpoint to the current one — the
// survivors as (skip, keep) runs over the baseline, plus the appended
// suffix — which in steady state is proportional to the items ingested
// since the last query, not to the synopsis size.
//
// Correctness is unconditional, not heuristic: every wave delta body starts
// with a flags varint whose bit0 selects "full" (the body is a plain
// recovery::put_checkpoint encoding of the new state, baseline ignored).
// The encoder diffs, *re-applies its own diff*, and falls back to the
// bit-exact full encoding whenever the round-trip disagrees or the diff is
// not smaller — so apply_delta(base, encode_delta(base, now)) == now holds
// for every input, by construction.
//
// Decoders follow the wire.cpp contract: canonical varints, hostile-length
// guards (no trusting attacker-controlled counts), and all-or-nothing
// output.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/agg_wave.hpp"
#include "core/checkpoint.hpp"
#include "distributed/party.hpp"
#include "distributed/wire.hpp"

namespace waves::recovery {

using distributed::Bytes;

// -- Wave-level deltas ------------------------------------------------------
// put_delta appends a self-describing body that get_delta turns back into
// the new checkpoint given the *same* baseline. On failure get_delta
// returns false with `out`/`at` unspecified; the party-level wrappers
// restore the all-or-nothing contract.

void put_delta(Bytes& out, const core::DetWaveCheckpoint& base,
               const core::DetWaveCheckpoint& now);
void put_delta(Bytes& out, const core::SumWaveCheckpoint& base,
               const core::SumWaveCheckpoint& now);
void put_delta(Bytes& out, const core::TsWaveCheckpoint& base,
               const core::TsWaveCheckpoint& now);
void put_delta(Bytes& out, const core::TsSumWaveCheckpoint& base,
               const core::TsSumWaveCheckpoint& now);
void put_delta(Bytes& out, const core::RandWaveCheckpoint& base,
               const core::RandWaveCheckpoint& now);
void put_delta(Bytes& out, const core::DistinctWaveCheckpoint& base,
               const core::DistinctWaveCheckpoint& now);
// AggWave's canonical checkpoint is the raw window contents, which turn
// over wholesale between rounds — no append-mostly structure to diff — so
// its delta body is always the full form. Shipping it under the delta
// framing keeps the one checkpoint codec per role invariant.
void put_delta(Bytes& out, const agg::AggWaveCheckpoint& base,
               const agg::AggWaveCheckpoint& now);

[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::DetWaveCheckpoint& base,
                             core::DetWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::SumWaveCheckpoint& base,
                             core::SumWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::TsWaveCheckpoint& base,
                             core::TsWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::TsSumWaveCheckpoint& base,
                             core::TsSumWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::RandWaveCheckpoint& base,
                             core::RandWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const core::DistinctWaveCheckpoint& base,
                             core::DistinctWaveCheckpoint& out);
[[nodiscard]] bool get_delta(const Bytes& in, std::size_t& at,
                             const agg::AggWaveCheckpoint& base,
                             agg::AggWaveCheckpoint& out);

// -- Party-level deltas -----------------------------------------------------
// Body shipped in a v3 DeltaReply: varint cursor, varint wave count, one
// wave delta body per instance. A baseline with a different instance count
// simply forces every wave body to its full form.

[[nodiscard]] Bytes encode_delta(const distributed::CountPartyCheckpoint& base,
                                 const distributed::CountPartyCheckpoint& now);
[[nodiscard]] Bytes encode_delta(
    const distributed::DistinctPartyCheckpoint& base,
    const distributed::DistinctPartyCheckpoint& now);

/// All-or-nothing: `out` untouched on failure; trailing garbage rejected.
[[nodiscard]] bool apply_delta(const distributed::CountPartyCheckpoint& base,
                               const Bytes& in,
                               distributed::CountPartyCheckpoint& out);
[[nodiscard]] bool apply_delta(
    const distributed::DistinctPartyCheckpoint& base, const Bytes& in,
    distributed::DistinctPartyCheckpoint& out);

/// Capacity-reusing variants for the steady-state client: build the new
/// checkpoint *into* `out`, reassigning its existing vectors so a caller
/// that ping-pongs two checkpoints (DeltaMirror's base/scratch) applies a
/// round's delta with near-zero allocations. Price of the reuse: `out` is
/// unspecified on failure (the all-or-nothing wrappers above delegate here
/// through a fresh checkpoint) and must not alias `base`. Same rejection
/// rules: canonical varints, hostile-length guards, trailing garbage.
[[nodiscard]] bool apply_delta_into(
    const distributed::CountPartyCheckpoint& base, const Bytes& in,
    distributed::CountPartyCheckpoint& out);
[[nodiscard]] bool apply_delta_into(
    const distributed::DistinctPartyCheckpoint& base, const Bytes& in,
    distributed::DistinctPartyCheckpoint& out);

}  // namespace waves::recovery
