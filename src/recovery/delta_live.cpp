#include "recovery/delta_live.hpp"

#include <cstdint>
#include <vector>

#include "core/rand_wave.hpp"
#include "distributed/wire.hpp"
#include "util/ring_buffer.hpp"

namespace waves::recovery {

using distributed::put_varint;

namespace {

// Count of live entries with position <= bound. Positions strictly ascend
// in from_oldest order, so this is the length of the baseline suffix the
// client still holds.
std::size_t survivors(const util::RingBuffer<std::uint64_t>& q,
                      std::uint64_t bound) {
  std::size_t lo = 0;
  std::size_t hi = q.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (q.from_oldest(mid) <= bound) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

void baseline_from_checkpoint(const distributed::CountPartyCheckpoint& ck,
                              CountDeltaBaseline& out) {
  out.valid = true;
  out.cursor = ck.cursor;
  out.waves.resize(ck.waves.size());
  for (std::size_t i = 0; i < ck.waves.size(); ++i) {
    CountDeltaBaseline::Wave& bw = out.waves[i];
    const core::RandWaveCheckpoint& wck = ck.waves[i];
    bw.pos = wck.pos;
    bw.len.assign(wck.queues.size(), 0);
    for (std::size_t l = 0; l < wck.queues.size(); ++l) {
      bw.len[l] = wck.queues[l].size();
    }
    bw.evicted = wck.evicted_bounds;
  }
}

bool encode_delta_live(const distributed::CountParty& party,
                       CountDeltaBaseline& baseline, Bytes& out) {
  const std::size_t start = out.size();
  const bool ok = party.visit_locked([&](std::span<const core::RandWave>
                                             waves) {
    if (!baseline.valid || baseline.waves.size() != waves.size()) {
      return false;
    }
    const std::uint64_t cursor = waves.empty() ? 0 : waves[0].pos();
    put_varint(out, cursor);
    put_varint(out, waves.size());
    for (std::size_t i = 0; i < waves.size(); ++i) {
      const core::RandWave& w = waves[i];
      const CountDeltaBaseline::Wave& bw = baseline.waves[i];
      const std::size_t levels = w.level_count();
      if (bw.len.size() != levels || bw.evicted.size() != levels ||
          w.pos() < bw.pos) {
        return false;
      }
      put_varint(out, 0);  // flags: diff form (mirrors put_delta_checked)
      put_varint(out, w.pos());
      put_varint(out, levels);
      for (std::size_t l = 0; l < levels; ++l) {
        const util::RingBuffer<std::uint64_t>& q = w.level_queue(l);
        const std::size_t k = survivors(q, bw.pos);
        if (k > bw.len[l] || w.evicted_bound(l) < bw.evicted[l]) {
          return false;
        }
        put_varint(out, bw.len[l] - k);  // drop
        put_varint(out, q.size() - k);   // append count
        std::uint64_t prev = k > 0 ? q.from_oldest(k - 1) : 0;
        for (std::size_t j = k; j < q.size(); ++j) {
          const std::uint64_t p = q.from_oldest(j);
          if (p < prev) return false;
          put_varint(out, p - prev);
          prev = p;
        }
        put_varint(out, w.evicted_bound(l) - bw.evicted[l]);
      }
    }
    // Committed: advance the baseline to the state just encoded, still
    // under the party lock so no ingest slips between encode and refresh.
    baseline.cursor = cursor;
    for (std::size_t i = 0; i < waves.size(); ++i) {
      const core::RandWave& w = waves[i];
      CountDeltaBaseline::Wave& bw = baseline.waves[i];
      bw.pos = w.pos();
      for (std::size_t l = 0; l < w.level_count(); ++l) {
        bw.len[l] = w.level_queue(l).size();
        bw.evicted[l] = w.evicted_bound(l);
      }
    }
    return true;
  });
  if (!ok) out.resize(start);
  return ok;
}

}  // namespace waves::recovery
