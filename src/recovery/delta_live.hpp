// O(change) count-role delta encoding straight out of the live rings.
//
// The generic delta path (delta.hpp) diffs two full checkpoints, which
// costs four O(synopsis) walks per request: copy the checkpoint, diff it
// against the baseline, re-apply the diff for the self-check, and encode
// the full form for the size comparison. For the count role that dominates
// the fetch wait at high party counts even when almost nothing changed.
//
// This encoder keeps only a *shape summary* of the checkpoint last shipped
// (per level: length and evicted bound, plus the stream position) and
// emits the byte-identical diff wire format by reading the party's live
// rings under its lock. Correctness rests on the RandWave ring invariant:
// levels only drop entries at the tail and append at the head, and
// positions strictly ascend within a level, so every live entry with
// position <= the baseline's pos is exactly the baseline suffix the client
// still holds. The survivor count per level is a binary search, and the
// appended tail is O(change) — no checkpoint copy, no re-apply, no full
// encode.
//
// Any violation of the expected shape (instance or level count mismatch,
// more survivors than the baseline held, a non-monotone bound) returns
// false and the caller must fall back to a self-contained full body.

#pragma once

#include <cstdint>
#include <vector>

#include "distributed/party.hpp"
#include "recovery/checkpoint.hpp"

namespace waves::recovery {

/// Shape of the count-party state a delta client last applied. Cheap to
/// hold per server (O(instances * levels) integers) and to refresh after
/// every reply.
struct CountDeltaBaseline {
  struct Wave {
    std::uint64_t pos = 0;
    std::vector<std::size_t> len;        // queue length per level
    std::vector<std::uint64_t> evicted;  // evicted bound per level
  };
  bool valid = false;
  std::uint64_t cursor = 0;  // party items_observed at baseline time
  std::vector<Wave> waves;
};

/// Refresh `out` to describe `ck` — call right after shipping a full body
/// so the next request can diff live.
void baseline_from_checkpoint(const distributed::CountPartyCheckpoint& ck,
                              CountDeltaBaseline& out);

/// Append the party-level delta body (same wire format as
/// encode_party_delta with diff-form waves) describing baseline -> live
/// state, then advance `baseline` to the encoded state. On failure `out`
/// is restored to its original length, the baseline is untouched, and the
/// caller must ship a full body instead.
[[nodiscard]] bool encode_delta_live(const distributed::CountParty& party,
                                     CountDeltaBaseline& baseline, Bytes& out);

}  // namespace waves::recovery
