#include "recovery/checkpoint.hpp"

#include <array>
#include <cstring>
#include <utility>

#include "obs/recovery_obs.hpp"

namespace waves::recovery {

namespace {

using distributed::get_varint;
using distributed::put_varint;

// Incremental growth for attacker-length-prefixed vectors, mirroring
// wire.cpp: reserve at most what the remaining bytes could possibly hold.
constexpr std::size_t kReserveCap = 64;

bool consumed(const Bytes& in, std::size_t at) { return at == in.size(); }

// CRC-64/XZ: reflected ECMA-182 polynomial.
constexpr std::uint64_t kCrcPoly = 0xC96C5795D7870F42ull;

std::array<std::uint64_t, 256> make_crc_table() {
  std::array<std::uint64_t, 256> t{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (c >> 1) ^ kCrcPoly : c >> 1;
    }
    t[static_cast<std::size_t>(i)] = c;
  }
  return t;
}

}  // namespace

std::uint64_t crc64(std::span<const std::uint8_t> data) {
  static const std::array<std::uint64_t, 256> table = make_crc_table();
  std::uint64_t c = ~std::uint64_t{0};
  for (const std::uint8_t b : data) {
    c = table[static_cast<std::size_t>((c ^ b) & 0xFF)] ^ (c >> 8);
  }
  return ~c;
}

// -- Wave bodies -----------------------------------------------------------

void put_checkpoint(Bytes& out, const core::DetWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.rank);
  put_varint(out, ck.discarded_rank);
  put_varint(out, ck.entries.size());
  // Positions and ranks both ascend in list order: delta-encode each.
  std::uint64_t pp = 0, pr = 0;
  for (const auto& [p, r] : ck.entries) {
    put_varint(out, p - pp);
    put_varint(out, r - pr);
    pp = p;
    pr = r;
  }
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::DetWaveCheckpoint& out) {
  core::DetWaveCheckpoint ck;
  std::uint64_t count = 0;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.rank) ||
      !get_varint(in, at, ck.discarded_rank) || !get_varint(in, at, count) ||
      count > in.size() - at) {
    return false;
  }
  ck.entries.reserve(std::min<std::size_t>(count, kReserveCap));
  std::uint64_t pp = 0, pr = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t dp = 0, dr = 0;
    if (!get_varint(in, at, dp) || !get_varint(in, at, dr)) return false;
    pp += dp;
    pr += dr;
    ck.entries.emplace_back(pp, pr);
  }
  out = std::move(ck);
  return true;
}

namespace {

// SumWave and TsSumWave share an entry layout (pos, value, z) and the same
// monotonicity: positions nondecreasing, z strictly increasing.
void put_sum_entries(Bytes& out,
                     const std::vector<core::SumEntryCheckpoint>& entries) {
  put_varint(out, entries.size());
  std::uint64_t pp = 0, pz = 0;
  for (const core::SumEntryCheckpoint& e : entries) {
    put_varint(out, e.pos - pp);
    put_varint(out, e.value);
    put_varint(out, e.z - pz);
    pp = e.pos;
    pz = e.z;
  }
}

bool get_sum_entries(const Bytes& in, std::size_t& at,
                     std::vector<core::SumEntryCheckpoint>& entries) {
  std::uint64_t count = 0;
  if (!get_varint(in, at, count) || count > in.size() - at) return false;
  entries.reserve(std::min<std::size_t>(count, kReserveCap));
  std::uint64_t pp = 0, pz = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t dp = 0, v = 0, dz = 0;
    if (!get_varint(in, at, dp) || !get_varint(in, at, v) ||
        !get_varint(in, at, dz)) {
      return false;
    }
    pp += dp;
    pz += dz;
    // restore() recomputes the level from z - value.
    if (v > pz) return false;
    entries.push_back(core::SumEntryCheckpoint{pp, v, pz});
  }
  return true;
}

}  // namespace

void put_checkpoint(Bytes& out, const core::SumWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.total);
  put_varint(out, ck.discarded_z);
  put_sum_entries(out, ck.entries);
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::SumWaveCheckpoint& out) {
  core::SumWaveCheckpoint ck;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.total) ||
      !get_varint(in, at, ck.discarded_z) ||
      !get_sum_entries(in, at, ck.entries)) {
    return false;
  }
  out = std::move(ck);
  return true;
}

void put_checkpoint(Bytes& out, const core::TsWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.rank);
  put_varint(out, ck.discarded_rank);
  put_varint(out, ck.entries.size());
  std::uint64_t pp = 0, pr = 0;
  for (const auto& [p, r] : ck.entries) {
    put_varint(out, p - pp);  // nondecreasing: deltas may be 0
    put_varint(out, r - pr);
    pp = p;
    pr = r;
  }
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::TsWaveCheckpoint& out) {
  core::TsWaveCheckpoint ck;
  std::uint64_t count = 0;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.rank) ||
      !get_varint(in, at, ck.discarded_rank) || !get_varint(in, at, count) ||
      count > in.size() - at) {
    return false;
  }
  ck.entries.reserve(std::min<std::size_t>(count, kReserveCap));
  std::uint64_t pp = 0, pr = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t dp = 0, dr = 0;
    if (!get_varint(in, at, dp) || !get_varint(in, at, dr)) return false;
    pp += dp;
    pr += dr;
    ck.entries.emplace_back(pp, pr);
  }
  out = std::move(ck);
  return true;
}

void put_checkpoint(Bytes& out, const core::TsSumWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.total);
  put_varint(out, ck.discarded_z);
  put_sum_entries(out, ck.entries);
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::TsSumWaveCheckpoint& out) {
  core::TsSumWaveCheckpoint ck;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.total) ||
      !get_varint(in, at, ck.discarded_z) ||
      !get_sum_entries(in, at, ck.entries)) {
    return false;
  }
  out = std::move(ck);
  return true;
}

void put_checkpoint(Bytes& out, const core::RandWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.queues.size());
  for (const std::vector<std::uint64_t>& q : ck.queues) {
    put_varint(out, q.size());
    std::uint64_t prev = 0;  // oldest first: ascending, delta-encode
    for (const std::uint64_t p : q) {
      put_varint(out, p - prev);
      prev = p;
    }
  }
  put_varint(out, ck.evicted_bounds.size());
  for (const std::uint64_t b : ck.evicted_bounds) put_varint(out, b);
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::RandWaveCheckpoint& out) {
  core::RandWaveCheckpoint ck;
  std::uint64_t queues = 0;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, queues) ||
      queues > in.size() - at) {
    return false;
  }
  ck.queues.reserve(std::min<std::size_t>(queues, kReserveCap));
  for (std::uint64_t l = 0; l < queues; ++l) {
    std::uint64_t len = 0;
    if (!get_varint(in, at, len) || len > in.size() - at) return false;
    std::vector<std::uint64_t> q;
    q.reserve(std::min<std::size_t>(len, kReserveCap));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
      std::uint64_t d = 0;
      if (!get_varint(in, at, d)) return false;
      prev += d;
      q.push_back(prev);
    }
    ck.queues.push_back(std::move(q));
  }
  std::uint64_t bounds = 0;
  if (!get_varint(in, at, bounds) || bounds > in.size() - at) return false;
  ck.evicted_bounds.reserve(std::min<std::size_t>(bounds, kReserveCap));
  for (std::uint64_t i = 0; i < bounds; ++i) {
    std::uint64_t b = 0;
    if (!get_varint(in, at, b)) return false;
    ck.evicted_bounds.push_back(b);
  }
  out = std::move(ck);
  return true;
}

void put_checkpoint(Bytes& out, const core::DistinctWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.levels.size());
  for (const auto& level : ck.levels) {
    put_varint(out, level.size());
    std::uint64_t prev = 0;  // oldest position first: delta-encode positions
    for (const auto& [value, pos] : level) {
      put_varint(out, value);
      put_varint(out, pos - prev);
      prev = pos;
    }
  }
  put_varint(out, ck.evicted_bounds.size());
  for (const std::uint64_t b : ck.evicted_bounds) put_varint(out, b);
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    core::DistinctWaveCheckpoint& out) {
  core::DistinctWaveCheckpoint ck;
  std::uint64_t levels = 0;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, levels) ||
      levels > in.size() - at) {
    return false;
  }
  ck.levels.reserve(std::min<std::size_t>(levels, kReserveCap));
  for (std::uint64_t l = 0; l < levels; ++l) {
    std::uint64_t len = 0;
    if (!get_varint(in, at, len) || len > in.size() - at) return false;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> level;
    level.reserve(std::min<std::size_t>(len, kReserveCap));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < len; ++i) {
      std::uint64_t v = 0, d = 0;
      if (!get_varint(in, at, v) || !get_varint(in, at, d)) return false;
      prev += d;
      level.emplace_back(v, prev);
    }
    ck.levels.push_back(std::move(level));
  }
  std::uint64_t bounds = 0;
  if (!get_varint(in, at, bounds) || bounds > in.size() - at) return false;
  ck.evicted_bounds.reserve(std::min<std::size_t>(bounds, kReserveCap));
  for (std::uint64_t i = 0; i < bounds; ++i) {
    std::uint64_t b = 0;
    if (!get_varint(in, at, b)) return false;
    ck.evicted_bounds.push_back(b);
  }
  out = std::move(ck);
  return true;
}

void put_checkpoint(Bytes& out, const agg::AggWaveCheckpoint& ck) {
  put_varint(out, ck.pos);
  put_varint(out, ck.values.size());
  // Window values are arbitrary signed int64s: zigzag so small magnitudes
  // of either sign stay short.
  for (const std::int64_t v : ck.values) {
    put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                        static_cast<std::uint64_t>(v >> 63));
  }
}

bool get_checkpoint(const Bytes& in, std::size_t& at,
                    agg::AggWaveCheckpoint& out) {
  agg::AggWaveCheckpoint ck;
  std::uint64_t count = 0;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, count) ||
      count > in.size() - at) {
    return false;
  }
  ck.values.reserve(std::min<std::size_t>(count, kReserveCap));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t u = 0;
    if (!get_varint(in, at, u)) return false;
    ck.values.push_back(
        static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1)));
  }
  out = std::move(ck);
  return true;
}

// -- Party bodies ----------------------------------------------------------

namespace {

template <typename WaveCk>
Bytes encode_party(std::uint64_t cursor, const std::vector<WaveCk>& waves) {
  Bytes out;
  put_varint(out, cursor);
  put_varint(out, waves.size());
  for (const WaveCk& w : waves) put_checkpoint(out, w);
  return out;
}

template <typename WaveCk>
bool decode_party(const Bytes& in, std::uint64_t& cursor,
                  std::vector<WaveCk>& waves) {
  std::size_t at = 0;
  std::uint64_t count = 0;
  if (!get_varint(in, at, cursor) || !get_varint(in, at, count) ||
      count > in.size() - at) {
    return false;
  }
  waves.reserve(std::min<std::size_t>(count, kReserveCap));
  for (std::uint64_t i = 0; i < count; ++i) {
    WaveCk w;
    if (!get_checkpoint(in, at, w)) return false;
    waves.push_back(std::move(w));
  }
  return consumed(in, at);
}

}  // namespace

Bytes encode(const distributed::CountPartyCheckpoint& ck) {
  return encode_party(ck.cursor, ck.waves);
}

Bytes encode(const distributed::DistinctPartyCheckpoint& ck) {
  return encode_party(ck.cursor, ck.waves);
}

Bytes encode(const BasicPartyCheckpoint& ck) {
  Bytes out;
  put_varint(out, ck.cursor);
  put_checkpoint(out, ck.wave);
  return out;
}

Bytes encode(const SumPartyCheckpoint& ck) {
  Bytes out;
  put_varint(out, ck.cursor);
  put_checkpoint(out, ck.wave);
  return out;
}

Bytes encode(const AggPartyCheckpoint& ck) {
  Bytes out;
  put_varint(out, ck.cursor);
  put_checkpoint(out, ck.wave);
  return out;
}

bool decode(const Bytes& in, distributed::CountPartyCheckpoint& out) {
  distributed::CountPartyCheckpoint ck;
  if (!decode_party(in, ck.cursor, ck.waves)) return false;
  out = std::move(ck);
  return true;
}

bool decode(const Bytes& in, distributed::DistinctPartyCheckpoint& out) {
  distributed::DistinctPartyCheckpoint ck;
  if (!decode_party(in, ck.cursor, ck.waves)) return false;
  out = std::move(ck);
  return true;
}

bool decode(const Bytes& in, BasicPartyCheckpoint& out) {
  BasicPartyCheckpoint ck;
  std::size_t at = 0;
  if (!get_varint(in, at, ck.cursor) || !get_checkpoint(in, at, ck.wave) ||
      !consumed(in, at)) {
    return false;
  }
  out = std::move(ck);
  return true;
}

bool decode(const Bytes& in, SumPartyCheckpoint& out) {
  SumPartyCheckpoint ck;
  std::size_t at = 0;
  if (!get_varint(in, at, ck.cursor) || !get_checkpoint(in, at, ck.wave) ||
      !consumed(in, at)) {
    return false;
  }
  out = std::move(ck);
  return true;
}

bool decode(const Bytes& in, AggPartyCheckpoint& out) {
  AggPartyCheckpoint ck;
  std::size_t at = 0;
  if (!get_varint(in, at, ck.cursor) || !get_checkpoint(in, at, ck.wave) ||
      !consumed(in, at)) {
    return false;
  }
  out = std::move(ck);
  return true;
}

// -- Envelope --------------------------------------------------------------

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'W', 'V', 'C', 'K'};

bool valid_kind(std::uint64_t k) {
  return k >= static_cast<std::uint64_t>(StateKind::kCount) &&
         k <= static_cast<std::uint64_t>(StateKind::kAgg);
}

OpenStatus reject(OpenStatus s) {
  obs::RecoveryObs::instance().checkpoints_rejected.add();
  return s;
}

}  // namespace

const char* open_status_name(OpenStatus s) {
  switch (s) {
    case OpenStatus::kOk:
      return "ok";
    case OpenStatus::kTruncated:
      return "truncated";
    case OpenStatus::kBadMagic:
      return "bad-magic";
    case OpenStatus::kBadVersion:
      return "bad-version";
    case OpenStatus::kWrongKind:
      return "wrong-kind";
    case OpenStatus::kBadLength:
      return "bad-length";
    case OpenStatus::kBadCrc:
      return "bad-crc";
  }
  return "unknown";
}

Bytes seal_envelope(StateKind kind, std::uint64_t generation,
                    const Bytes& body) {
  Bytes head;
  put_varint(head, kEnvelopeVersion);
  put_varint(head, static_cast<std::uint64_t>(kind));
  put_varint(head, generation);
  put_varint(head, body.size());
  // Assembled with memcpy into a pre-sized buffer (not insert) to sidestep
  // a GCC 12 -Wstringop-overflow false positive on chained vector inserts.
  Bytes out(kMagic.size() + head.size() + body.size());
  std::memcpy(out.data(), kMagic.data(), kMagic.size());
  std::memcpy(out.data() + kMagic.size(), head.data(), head.size());
  if (!body.empty()) {
    std::memcpy(out.data() + kMagic.size() + head.size(), body.data(),
                body.size());
  }
  distributed::put_fixed64(out, crc64(out));
  return out;
}

OpenStatus open_envelope(const Bytes& in, StateKind expected,
                         std::uint64_t& generation, Bytes& body) {
  // The CRC trailer is checked first: it covers every header byte, so any
  // torn write fails here before the fields are even interpreted.
  if (in.size() < kMagic.size() + 8) return reject(OpenStatus::kTruncated);
  const std::size_t crc_at = in.size() - 8;
  std::size_t tmp_at = crc_at;
  std::uint64_t stored_crc = 0;
  (void)distributed::get_fixed64(in, tmp_at, stored_crc);
  if (crc64(std::span(in.data(), crc_at)) != stored_crc) {
    return reject(OpenStatus::kBadCrc);
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), in.begin())) {
    return reject(OpenStatus::kBadMagic);
  }
  std::size_t at = kMagic.size();
  std::uint64_t version = 0, kind = 0, gen = 0, body_len = 0;
  if (!get_varint(in, at, version) || !get_varint(in, at, kind) ||
      !get_varint(in, at, gen) || !get_varint(in, at, body_len)) {
    return reject(OpenStatus::kTruncated);
  }
  if (version != kEnvelopeVersion) return reject(OpenStatus::kBadVersion);
  if (!valid_kind(kind)) return reject(OpenStatus::kWrongKind);
  if (static_cast<StateKind>(kind) != expected) {
    return reject(OpenStatus::kWrongKind);
  }
  if (body_len != crc_at - at) return reject(OpenStatus::kBadLength);
  generation = gen;
  body.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
              in.begin() + static_cast<std::ptrdiff_t>(crc_at));
  return OpenStatus::kOk;
}

}  // namespace recovery
