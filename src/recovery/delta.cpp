#include "recovery/delta.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "recovery/checkpoint.hpp"

namespace waves::recovery {

namespace {

using distributed::get_varint;
using distributed::put_varint;

constexpr std::size_t kReserveCap = 64;
constexpr std::uint64_t kFlagFull = 1;

// Survivors are encoded as (skip, keep) runs over the baseline list; what
// the runs never reach is dropped, and the appended suffix follows.
struct Run {
  std::uint64_t skip = 0;
  std::uint64_t keep = 0;
};

// Express `now` as (subsequence of base) + (appended suffix), where
// `is_append` marks elements that cannot have existed at baseline time
// (rank/total/position beyond the baseline's). Returns false when `now`
// does not have that shape — the caller then falls back to a full encode.
template <typename T, typename IsAppend>
bool build_runs(const std::vector<T>& base, const std::vector<T>& now,
                IsAppend&& is_append, std::vector<Run>& runs,
                std::size_t& append_from) {
  std::size_t k = 0;
  while (k < now.size() && !is_append(now[k])) ++k;
  append_from = k;
  for (std::size_t j = k; j < now.size(); ++j) {
    if (!is_append(now[j])) return false;
  }
  runs.clear();
  std::size_t i = 0, j = 0;
  while (j < k) {
    Run run;
    while (i < base.size() && !(base[i] == now[j])) {
      ++i;
      ++run.skip;
    }
    if (i == base.size()) return false;
    while (j < k && i < base.size() && base[i] == now[j]) {
      ++i;
      ++j;
      ++run.keep;
    }
    runs.push_back(run);
  }
  return true;
}

void put_runs(Bytes& out, const std::vector<Run>& runs) {
  put_varint(out, runs.size());
  for (const Run& r : runs) {
    put_varint(out, r.skip);
    put_varint(out, r.keep);
  }
}

template <typename T>
bool apply_runs(const Bytes& in, std::size_t& at, const std::vector<T>& base,
                std::vector<T>& out) {
  std::uint64_t nruns = 0;
  if (!get_varint(in, at, nruns) || nruns > in.size() - at) return false;
  std::size_t i = 0;
  for (std::uint64_t r = 0; r < nruns; ++r) {
    std::uint64_t skip = 0, keep = 0;
    if (!get_varint(in, at, skip) || !get_varint(in, at, keep)) return false;
    if (skip > base.size() - i) return false;
    i += skip;
    if (keep > base.size() - i) return false;
    out.insert(out.end(), base.begin() + static_cast<std::ptrdiff_t>(i),
               base.begin() + static_cast<std::ptrdiff_t>(i + keep));
    i += keep;
  }
  return true;
}

// -- Det / Ts: (pos, rank) entry lists --------------------------------------
// Ranks are strictly increasing and never reused, so rank > base.rank is an
// exact "appended since the baseline" test (positions alone would misfile
// repeated-timestamp items in the Ts wave).

template <typename Ck>
bool diff_rank_entries(Bytes& out, const Ck& base, const Ck& now) {
  std::vector<Run> runs;
  std::size_t append_from = 0;
  if (!build_runs(
          base.entries, now.entries,
          [&base](const std::pair<std::uint64_t, std::uint64_t>& e) {
            return e.second > base.rank;
          },
          runs, append_from)) {
    return false;
  }
  put_varint(out, now.pos);
  put_varint(out, now.rank);
  put_varint(out, now.discarded_rank);
  put_runs(out, runs);
  put_varint(out, now.entries.size() - append_from);
  std::uint64_t pp = 0, pr = 0;
  if (append_from > 0) {
    pp = now.entries[append_from - 1].first;
    pr = now.entries[append_from - 1].second;
  }
  for (std::size_t j = append_from; j < now.entries.size(); ++j) {
    const auto& [p, r] = now.entries[j];
    if (p < pp || r < pr) return false;
    put_varint(out, p - pp);
    put_varint(out, r - pr);
    pp = p;
    pr = r;
  }
  return true;
}

template <typename Ck>
bool apply_rank_entries(const Bytes& in, std::size_t& at, const Ck& base,
                        Ck& out) {
  Ck ck;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.rank) ||
      !get_varint(in, at, ck.discarded_rank) ||
      !apply_runs(in, at, base.entries, ck.entries)) {
    return false;
  }
  std::uint64_t appends = 0;
  if (!get_varint(in, at, appends) || appends > in.size() - at) return false;
  ck.entries.reserve(ck.entries.size() +
                     std::min<std::size_t>(appends, kReserveCap));
  std::uint64_t pp = 0, pr = 0;
  if (!ck.entries.empty()) {
    pp = ck.entries.back().first;
    pr = ck.entries.back().second;
  }
  for (std::uint64_t j = 0; j < appends; ++j) {
    std::uint64_t dp = 0, dr = 0;
    if (!get_varint(in, at, dp) || !get_varint(in, at, dr)) return false;
    pp += dp;
    pr += dr;
    ck.entries.emplace_back(pp, pr);
  }
  out = std::move(ck);
  return true;
}

// -- Sum / TsSum: (pos, value, z) entry lists -------------------------------
// z (running total) is strictly increasing; entries appended since the
// baseline have z > base.total.

template <typename Ck>
bool diff_sum_entries(Bytes& out, const Ck& base, const Ck& now) {
  std::vector<Run> runs;
  std::size_t append_from = 0;
  if (!build_runs(
          base.entries, now.entries,
          [&base](const core::SumEntryCheckpoint& e) {
            return e.z > base.total;
          },
          runs, append_from)) {
    return false;
  }
  put_varint(out, now.pos);
  put_varint(out, now.total);
  put_varint(out, now.discarded_z);
  put_runs(out, runs);
  put_varint(out, now.entries.size() - append_from);
  std::uint64_t pp = 0, pz = 0;
  if (append_from > 0) {
    pp = now.entries[append_from - 1].pos;
    pz = now.entries[append_from - 1].z;
  }
  for (std::size_t j = append_from; j < now.entries.size(); ++j) {
    const core::SumEntryCheckpoint& e = now.entries[j];
    if (e.pos < pp || e.z < pz) return false;
    put_varint(out, e.pos - pp);
    put_varint(out, e.value);
    put_varint(out, e.z - pz);
    pp = e.pos;
    pz = e.z;
  }
  return true;
}

template <typename Ck>
bool apply_sum_entries(const Bytes& in, std::size_t& at, const Ck& base,
                       Ck& out) {
  Ck ck;
  if (!get_varint(in, at, ck.pos) || !get_varint(in, at, ck.total) ||
      !get_varint(in, at, ck.discarded_z) ||
      !apply_runs(in, at, base.entries, ck.entries)) {
    return false;
  }
  std::uint64_t appends = 0;
  if (!get_varint(in, at, appends) || appends > in.size() - at) return false;
  ck.entries.reserve(ck.entries.size() +
                     std::min<std::size_t>(appends, kReserveCap));
  std::uint64_t pp = 0, pz = 0;
  if (!ck.entries.empty()) {
    pp = ck.entries.back().pos;
    pz = ck.entries.back().z;
  }
  for (std::uint64_t j = 0; j < appends; ++j) {
    std::uint64_t dp = 0, v = 0, dz = 0;
    if (!get_varint(in, at, dp) || !get_varint(in, at, v) ||
        !get_varint(in, at, dz)) {
      return false;
    }
    pp += dp;
    pz += dz;
    // restore() recomputes the level from z - value (as in codec.cpp).
    if (v > pz) return false;
    ck.entries.push_back(core::SumEntryCheckpoint{pp, v, pz});
  }
  out = std::move(ck);
  return true;
}

// -- Rand: per-level queues, front-drop + back-append -----------------------
// Queue positions ascend (oldest first) and only ever leave from the front
// (capacity eviction / expiry) or arrive at the back, so each level's edit
// is one drop count plus the appended positions; evicted bounds are
// monotone, delta-encoded so an untouched level costs one zero byte.

bool diff_rand(Bytes& out, const core::RandWaveCheckpoint& base,
               const core::RandWaveCheckpoint& now) {
  if (now.queues.size() != base.queues.size() ||
      now.evicted_bounds.size() != base.evicted_bounds.size() ||
      now.queues.size() != now.evicted_bounds.size()) {
    return false;
  }
  put_varint(out, now.pos);
  put_varint(out, now.queues.size());
  for (std::size_t l = 0; l < now.queues.size(); ++l) {
    const std::vector<std::uint64_t>& oq = base.queues[l];
    const std::vector<std::uint64_t>& nq = now.queues[l];
    std::size_t k = 0;  // survivors: positions already present at baseline
    while (k < nq.size() && nq[k] <= base.pos) ++k;
    if (k > oq.size()) return false;
    const std::size_t drop = oq.size() - k;
    for (std::size_t i = 0; i < k; ++i) {
      if (oq[drop + i] != nq[i]) return false;
    }
    put_varint(out, drop);
    put_varint(out, nq.size() - k);
    std::uint64_t prev = k > 0 ? nq[k - 1] : 0;
    for (std::size_t j = k; j < nq.size(); ++j) {
      if (nq[j] < prev) return false;
      put_varint(out, nq[j] - prev);
      prev = nq[j];
    }
    if (now.evicted_bounds[l] < base.evicted_bounds[l]) return false;
    put_varint(out, now.evicted_bounds[l] - base.evicted_bounds[l]);
  }
  return true;
}

// Builds into `out` in place, reassigning its per-level vectors so their
// capacity survives across rounds (the client's ping-pong scratch). `out`
// is unspecified on failure and must not alias `base` — both hold at every
// call site (fresh locals, or DeltaMirror's distinct base/scratch members).
bool apply_rand(const Bytes& in, std::size_t& at,
                const core::RandWaveCheckpoint& base,
                core::RandWaveCheckpoint& out) {
  std::uint64_t nq = 0;
  if (!get_varint(in, at, out.pos) || !get_varint(in, at, nq) ||
      nq != base.queues.size() || nq != base.evicted_bounds.size()) {
    return false;
  }
  out.queues.resize(nq);
  out.evicted_bounds.resize(nq);
  for (std::size_t l = 0; l < nq; ++l) {
    std::uint64_t drop = 0, appends = 0;
    if (!get_varint(in, at, drop) || drop > base.queues[l].size() ||
        !get_varint(in, at, appends) || appends > in.size() - at) {
      return false;
    }
    std::vector<std::uint64_t>& q = out.queues[l];
    q.assign(base.queues[l].begin() + static_cast<std::ptrdiff_t>(drop),
             base.queues[l].end());
    q.reserve(q.size() + std::min<std::size_t>(appends, kReserveCap));
    std::uint64_t prev = q.empty() ? 0 : q.back();
    for (std::uint64_t j = 0; j < appends; ++j) {
      std::uint64_t d = 0;
      if (!get_varint(in, at, d)) return false;
      prev += d;
      q.push_back(prev);
    }
    std::uint64_t dbound = 0;
    if (!get_varint(in, at, dbound)) return false;
    out.evicted_bounds[l] = base.evicted_bounds[l] + dbound;
  }
  return true;
}

// -- Distinct: per-level (value, pos) lists ---------------------------------
// Re-arrivals remove a value from the middle of its level and append it
// with a fresh position, so survivors are a general subsequence (runs), not
// just a suffix; appended items all carry positions beyond the baseline's.

bool diff_distinct(Bytes& out, const core::DistinctWaveCheckpoint& base,
                   const core::DistinctWaveCheckpoint& now) {
  if (now.levels.size() != base.levels.size() ||
      now.evicted_bounds.size() != base.evicted_bounds.size() ||
      now.levels.size() != now.evicted_bounds.size()) {
    return false;
  }
  put_varint(out, now.pos);
  put_varint(out, now.levels.size());
  std::vector<Run> runs;
  for (std::size_t l = 0; l < now.levels.size(); ++l) {
    std::size_t append_from = 0;
    if (!build_runs(
            base.levels[l], now.levels[l],
            [&base](const std::pair<std::uint64_t, std::uint64_t>& item) {
              return item.second > base.pos;
            },
            runs, append_from)) {
      return false;
    }
    put_runs(out, runs);
    put_varint(out, now.levels[l].size() - append_from);
    std::uint64_t prev =
        append_from > 0 ? now.levels[l][append_from - 1].second : 0;
    for (std::size_t j = append_from; j < now.levels[l].size(); ++j) {
      const auto& [value, p] = now.levels[l][j];
      if (p < prev) return false;
      put_varint(out, value);
      put_varint(out, p - prev);
      prev = p;
    }
    if (now.evicted_bounds[l] < base.evicted_bounds[l]) return false;
    put_varint(out, now.evicted_bounds[l] - base.evicted_bounds[l]);
  }
  return true;
}

// In-place like apply_rand: `out` unspecified on failure, must not alias
// `base`, per-level vectors keep their capacity across rounds.
bool apply_distinct(const Bytes& in, std::size_t& at,
                    const core::DistinctWaveCheckpoint& base,
                    core::DistinctWaveCheckpoint& out) {
  std::uint64_t nl = 0;
  if (!get_varint(in, at, out.pos) || !get_varint(in, at, nl) ||
      nl != base.levels.size() || nl != base.evicted_bounds.size()) {
    return false;
  }
  out.levels.resize(nl);
  out.evicted_bounds.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& level =
        out.levels[l];
    level.clear();  // apply_runs appends
    if (!apply_runs(in, at, base.levels[l], level)) return false;
    std::uint64_t appends = 0;
    if (!get_varint(in, at, appends) || appends > in.size() - at) return false;
    level.reserve(level.size() + std::min<std::size_t>(appends, kReserveCap));
    std::uint64_t prev = level.empty() ? 0 : level.back().second;
    for (std::uint64_t j = 0; j < appends; ++j) {
      std::uint64_t v = 0, d = 0;
      if (!get_varint(in, at, v) || !get_varint(in, at, d)) return false;
      prev += d;
      level.emplace_back(v, prev);
    }
    std::uint64_t dbound = 0;
    if (!get_varint(in, at, dbound)) return false;
    out.evicted_bounds[l] = base.evicted_bounds[l] + dbound;
  }
  return true;
}

// -- Checked wrapper --------------------------------------------------------
// Diff, re-apply the diff, and keep it only if the round trip reproduces
// `now` exactly and beats the full encoding — otherwise ship the full form.
// Bit-exactness of apply_delta(base, encode_delta(base, now)) == now is
// therefore guaranteed for every input, not just well-behaved ones.

template <typename Ck, typename DiffFn, typename ApplyFn>
void put_delta_checked(Bytes& out, const Ck& base, const Ck& now, DiffFn diff,
                       ApplyFn apply) {
  Bytes body;
  bool ok = diff(body, base, now);
  if (ok) {
    Ck check;
    std::size_t at = 0;
    ok = apply(body, at, base, check) && at == body.size() && check == now;
  }
  Bytes full;
  put_checkpoint(full, now);
  if (!ok || body.size() >= full.size()) {
    put_varint(out, kFlagFull);
    out.insert(out.end(), full.begin(), full.end());
  } else {
    put_varint(out, 0);
    out.insert(out.end(), body.begin(), body.end());
  }
}

template <typename Ck, typename ApplyFn>
bool get_delta_impl(const Bytes& in, std::size_t& at, const Ck& base, Ck& out,
                    ApplyFn apply) {
  std::uint64_t flags = 0;
  if (!get_varint(in, at, flags) || flags > kFlagFull) return false;
  if (flags & kFlagFull) return get_checkpoint(in, at, out);
  return apply(in, at, base, out);
}

}  // namespace

void put_delta(Bytes& out, const core::DetWaveCheckpoint& base,
               const core::DetWaveCheckpoint& now) {
  put_delta_checked(out, base, now, diff_rank_entries<core::DetWaveCheckpoint>,
                    apply_rank_entries<core::DetWaveCheckpoint>);
}

void put_delta(Bytes& out, const core::TsWaveCheckpoint& base,
               const core::TsWaveCheckpoint& now) {
  put_delta_checked(out, base, now, diff_rank_entries<core::TsWaveCheckpoint>,
                    apply_rank_entries<core::TsWaveCheckpoint>);
}

void put_delta(Bytes& out, const core::SumWaveCheckpoint& base,
               const core::SumWaveCheckpoint& now) {
  put_delta_checked(out, base, now, diff_sum_entries<core::SumWaveCheckpoint>,
                    apply_sum_entries<core::SumWaveCheckpoint>);
}

void put_delta(Bytes& out, const core::TsSumWaveCheckpoint& base,
               const core::TsSumWaveCheckpoint& now) {
  put_delta_checked(out, base, now,
                    diff_sum_entries<core::TsSumWaveCheckpoint>,
                    apply_sum_entries<core::TsSumWaveCheckpoint>);
}

void put_delta(Bytes& out, const core::RandWaveCheckpoint& base,
               const core::RandWaveCheckpoint& now) {
  put_delta_checked(out, base, now, diff_rand, apply_rand);
}

void put_delta(Bytes& out, const core::DistinctWaveCheckpoint& base,
               const core::DistinctWaveCheckpoint& now) {
  put_delta_checked(out, base, now, diff_distinct, apply_distinct);
}

void put_delta(Bytes& out, const agg::AggWaveCheckpoint& base,
               const agg::AggWaveCheckpoint& now) {
  // Always the full form: the window contents roll over item by item, so a
  // runs-over-baseline diff would cost as much as the body it replaces.
  (void)base;
  put_varint(out, kFlagFull);
  put_checkpoint(out, now);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::DetWaveCheckpoint& base,
               core::DetWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out,
                        apply_rank_entries<core::DetWaveCheckpoint>);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::TsWaveCheckpoint& base, core::TsWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out,
                        apply_rank_entries<core::TsWaveCheckpoint>);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::SumWaveCheckpoint& base,
               core::SumWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out,
                        apply_sum_entries<core::SumWaveCheckpoint>);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::TsSumWaveCheckpoint& base,
               core::TsSumWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out,
                        apply_sum_entries<core::TsSumWaveCheckpoint>);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::RandWaveCheckpoint& base,
               core::RandWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out, apply_rand);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const core::DistinctWaveCheckpoint& base,
               core::DistinctWaveCheckpoint& out) {
  return get_delta_impl(in, at, base, out, apply_distinct);
}

bool get_delta(const Bytes& in, std::size_t& at,
               const agg::AggWaveCheckpoint& base,
               agg::AggWaveCheckpoint& out) {
  // The encoder only ships the full form, but accept the standard framing:
  // a diff-form body for this type is simply unknown → reject.
  std::uint64_t flags = 0;
  if (!get_varint(in, at, flags) || flags != kFlagFull) return false;
  (void)base;
  return get_checkpoint(in, at, out);
}

// -- Party-level ------------------------------------------------------------

namespace {

template <typename PartyCk>
Bytes encode_party_delta(const PartyCk& base, const PartyCk& now) {
  using WaveCk = typename std::decay_t<decltype(now.waves)>::value_type;
  const WaveCk empty{};
  Bytes out;
  put_varint(out, now.cursor);
  put_varint(out, now.waves.size());
  for (std::size_t i = 0; i < now.waves.size(); ++i) {
    const WaveCk& b = i < base.waves.size() ? base.waves[i] : empty;
    put_delta(out, b, now.waves[i]);
  }
  return out;
}

// Decodes straight into `out`, reusing its wave slots (and their nested
// vectors, via the in-place wave appliers) so a steady-state round touches
// the allocator only when a level genuinely outgrows its capacity. `out`
// is unspecified on failure and must not alias `base`. The wave count is
// attacker-controlled, so never resize() up to it — shrink to it, then
// grow one decoded wave at a time (truncated input fails fast).
template <typename PartyCk>
bool apply_party_delta_into(const PartyCk& base, const Bytes& in,
                            PartyCk& out) {
  using WaveCk = typename std::decay_t<decltype(out.waves)>::value_type;
  const WaveCk empty{};
  std::size_t at = 0;
  std::uint64_t count = 0;
  if (!get_varint(in, at, out.cursor) || !get_varint(in, at, count) ||
      count > in.size() - at) {
    return false;
  }
  if (count < out.waves.size()) out.waves.resize(count);
  out.waves.reserve(std::min<std::size_t>(count, kReserveCap));
  for (std::uint64_t i = 0; i < count; ++i) {
    const WaveCk& b = i < base.waves.size() ? base.waves[i] : empty;
    if (i < out.waves.size()) {
      if (!get_delta(in, at, b, out.waves[i])) return false;
    } else {
      WaveCk w;
      if (!get_delta(in, at, b, w)) return false;
      out.waves.push_back(std::move(w));
    }
  }
  if (at != in.size()) return false;
  return true;
}

// All-or-nothing wrapper: decode into a fresh checkpoint so `out` stays
// untouched when the body is rejected.
template <typename PartyCk>
bool apply_party_delta(const PartyCk& base, const Bytes& in, PartyCk& out) {
  PartyCk ck;
  if (!apply_party_delta_into(base, in, ck)) return false;
  out = std::move(ck);
  return true;
}

}  // namespace

Bytes encode_delta(const distributed::CountPartyCheckpoint& base,
                   const distributed::CountPartyCheckpoint& now) {
  return encode_party_delta(base, now);
}

Bytes encode_delta(const distributed::DistinctPartyCheckpoint& base,
                   const distributed::DistinctPartyCheckpoint& now) {
  return encode_party_delta(base, now);
}

bool apply_delta(const distributed::CountPartyCheckpoint& base,
                 const Bytes& in, distributed::CountPartyCheckpoint& out) {
  return apply_party_delta(base, in, out);
}

bool apply_delta(const distributed::DistinctPartyCheckpoint& base,
                 const Bytes& in, distributed::DistinctPartyCheckpoint& out) {
  return apply_party_delta(base, in, out);
}

bool apply_delta_into(const distributed::CountPartyCheckpoint& base,
                      const Bytes& in,
                      distributed::CountPartyCheckpoint& out) {
  return apply_party_delta_into(base, in, out);
}

bool apply_delta_into(const distributed::DistinctPartyCheckpoint& base,
                      const Bytes& in,
                      distributed::DistinctPartyCheckpoint& out) {
  return apply_party_delta_into(base, in, out);
}

}  // namespace waves::recovery
