// Durable on-disk home for a party daemon's checkpoint and generation.
//
// Layout under --state-dir:
//   generation       ASCII decimal, rewritten atomically on every bump
//   checkpoint.bin   one sealed envelope (see checkpoint.hpp)
//
// Every write is atomic and durable: write to `<name>.tmp`, fsync the file,
// rename over the target, fsync the directory. A crash at any point leaves
// either the old file or the new one — never a torn mix — and whatever does
// land is still CRC-guarded, so the worst outcome of any failure is a
// rejected checkpoint and a restart from the empty state.
//
// The generation number is the daemon's epoch: bumped (and persisted)
// once per process start, advertised in HelloAck, and embedded in every
// sealed checkpoint. A referee that sees the generation move mid-round
// knows the party restarted and its earlier snapshot may describe a
// different replay state.
#pragma once

#include <cstdint>
#include <string>

#include "recovery/checkpoint.hpp"

namespace waves::recovery {

class StateStore {
 public:
  explicit StateStore(std::string dir);

  /// Create the directory if needed. False on I/O failure (errno in
  /// error()); all later operations will also fail.
  [[nodiscard]] bool prepare();

  /// Read the persisted generation (0 when absent), durably write its
  /// successor, and return it. Call once at process start.
  [[nodiscard]] std::uint64_t bump_generation();

  /// Seal `body` and atomically persist it as checkpoint.bin. Counts
  /// waves_recovery_checkpoints_written_total / _bytes_total on success.
  [[nodiscard]] bool save(StateKind kind, std::uint64_t generation,
                          const Bytes& body);

  enum class LoadStatus {
    kOk,        // body/generation filled, restore counter bumped
    kMissing,   // no checkpoint.bin — fresh start, not an error
    kRejected,  // file exists but failed envelope validation (see why)
    kIoError,   // read failed mid-flight
  };

  /// Read and validate checkpoint.bin. On kRejected, `why` (if non-null)
  /// holds the envelope verdict and the rejection has been counted.
  [[nodiscard]] LoadStatus load(StateKind expected, std::uint64_t& generation,
                                Bytes& body, OpenStatus* why = nullptr);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string checkpoint_path() const;
  /// Human-readable description of the last failure ("" if none).
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  [[nodiscard]] bool write_atomic(const std::string& name, const Bytes& data);

  std::string dir_;
  mutable std::string error_;
};

}  // namespace waves::recovery
