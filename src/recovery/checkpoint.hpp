// Durable checkpoint codec: a versioned, CRC-guarded byte encoding for
// every synopsis checkpoint in the system (the six core waves and the four
// party-level states a `waved` daemon can serve).
//
// Why this is cheap: a party's entire window state is O((1/eps) log^2 N)
// bits (Theorems 2, 5-7) — the checkpoint is the synopsis, not the stream.
// A daemon that persists it plus its stream cursor recovers by restoring
// the synopsis and differentially replaying items [cursor, end) of its
// deterministic feed, after which it is behaviorally identical to a party
// that never crashed.
//
// Encoding reuses the canonical-varint machinery of distributed/wire.cpp
// (sorted sequences delta-encoded, exactly one accepted byte form per
// value) and keeps its no-partial-output contract: a decoder either fills
// `out` completely or leaves it untouched.
//
// Envelope (what actually hits disk):
//
//   "WVCK" | varint version | varint kind | varint generation
//          | varint body_len | body bytes | fixed64 CRC-64/XZ
//
// The CRC covers every byte before it. open_envelope() rejects bad magic,
// unknown versions, kind mismatches, length mismatches, and CRC failures —
// each rejection counted in waves_recovery_checkpoints_rejected_total — so
// a torn, truncated, or bit-rotted file falls back to empty state instead
// of silently corrupting the window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agg/agg_wave.hpp"
#include "core/checkpoint.hpp"
#include "distributed/party.hpp"
#include "distributed/wire.hpp"

namespace waves::recovery {

using distributed::Bytes;

/// Scenario-1 Basic Counting daemon state (net::BasicPartyState).
struct BasicPartyCheckpoint {
  std::uint64_t cursor = 0;  // stream items consumed
  core::DetWaveCheckpoint wave;
};

/// Scenario-1 Sum daemon state (net::SumPartyState).
struct SumPartyCheckpoint {
  std::uint64_t cursor = 0;
  core::SumWaveCheckpoint wave;
};

/// Exact-aggregate daemon state (net::AggPartyState). Unlike the waves,
/// the body is O(window) words — still KBs for the windows this role is
/// meant for, and the envelope/CRC machinery is size-agnostic.
struct AggPartyCheckpoint {
  std::uint64_t cursor = 0;
  agg::AggWaveCheckpoint wave;
};

/// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout ~0). Table-driven;
/// checkpoints are KBs, so one pass is negligible next to the fsync.
[[nodiscard]] std::uint64_t crc64(std::span<const std::uint8_t> data);

// -- Body codecs -----------------------------------------------------------
// put_* appends; get_* reads at `at`, advancing it. On failure get_* returns
// false and leaves `out`/`at` unspecified — the whole-buffer wrappers and
// open_envelope() discard everything on failure, preserving the
// all-or-nothing contract at the struct the caller actually sees.

void put_checkpoint(Bytes& out, const core::DetWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const core::SumWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const core::TsWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const core::TsSumWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const core::RandWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const core::DistinctWaveCheckpoint& ck);
void put_checkpoint(Bytes& out, const agg::AggWaveCheckpoint& ck);

[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::DetWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::SumWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::TsWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::TsSumWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::RandWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  core::DistinctWaveCheckpoint& out);
[[nodiscard]] bool get_checkpoint(const Bytes& in, std::size_t& at,
                                  agg::AggWaveCheckpoint& out);

// Party-level bodies: stream cursor + the per-instance wave checkpoints.
[[nodiscard]] Bytes encode(const distributed::CountPartyCheckpoint& ck);
[[nodiscard]] Bytes encode(const distributed::DistinctPartyCheckpoint& ck);
[[nodiscard]] Bytes encode(const BasicPartyCheckpoint& ck);
[[nodiscard]] Bytes encode(const SumPartyCheckpoint& ck);
[[nodiscard]] Bytes encode(const AggPartyCheckpoint& ck);

/// All-or-nothing: `out` untouched on failure; trailing garbage rejected.
[[nodiscard]] bool decode(const Bytes& in,
                          distributed::CountPartyCheckpoint& out);
[[nodiscard]] bool decode(const Bytes& in,
                          distributed::DistinctPartyCheckpoint& out);
[[nodiscard]] bool decode(const Bytes& in, BasicPartyCheckpoint& out);
[[nodiscard]] bool decode(const Bytes& in, SumPartyCheckpoint& out);
[[nodiscard]] bool decode(const Bytes& in, AggPartyCheckpoint& out);

// -- Envelope --------------------------------------------------------------

/// Which party state a sealed checkpoint holds; numbering matches
/// net::PartyRole so a daemon can derive it from its --role.
enum class StateKind : std::uint8_t {
  kCount = 1,
  kDistinct = 2,
  kBasic = 3,
  kSum = 4,
  kAgg = 5,
};

inline constexpr std::uint64_t kEnvelopeVersion = 1;

enum class OpenStatus {
  kOk,
  kTruncated,    // shorter than the fixed fields demand
  kBadMagic,     // not a checkpoint file
  kBadVersion,   // written by an incompatible codec
  kWrongKind,    // checkpoint for a different role
  kBadLength,    // body_len disagrees with the buffer
  kBadCrc,       // bit rot / torn write
};

[[nodiscard]] const char* open_status_name(OpenStatus s);

/// Wrap a body for disk: magic, version, kind, generation, length, CRC.
[[nodiscard]] Bytes seal_envelope(StateKind kind, std::uint64_t generation,
                                  const Bytes& body);

/// Validate and unwrap. On any failure `generation`/`body` are untouched
/// and waves_recovery_checkpoints_rejected_total is bumped.
[[nodiscard]] OpenStatus open_envelope(const Bytes& in, StateKind expected,
                                       std::uint64_t& generation,
                                       Bytes& body);

}  // namespace waves::recovery
