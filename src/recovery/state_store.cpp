#include "recovery/state_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <utility>

#include "obs/recovery_obs.hpp"

namespace waves::recovery {

namespace {

constexpr const char* kCheckpointName = "checkpoint.bin";
constexpr const char* kGenerationName = "generation";

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Read a whole file. Returns false with `missing` set when it does not
// exist; false with `missing` clear on a real I/O error.
bool read_file(const std::string& path, Bytes& out, bool& missing) {
  missing = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    missing = errno == ENOENT;
    return false;
  }
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

StateStore::StateStore(std::string dir) : dir_(std::move(dir)) {}

std::string StateStore::checkpoint_path() const {
  return dir_ + "/" + kCheckpointName;
}

bool StateStore::prepare() {
  if (::mkdir(dir_.c_str(), 0755) == 0 || errno == EEXIST) return true;
  error_ = errno_string("mkdir");
  return false;
}

bool StateStore::write_atomic(const std::string& name, const Bytes& data) {
  const std::string tmp = dir_ + "/" + name + ".tmp";
  const std::string dst = dir_ + "/" + name;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    error_ = errno_string("open tmp");
    return false;
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = errno_string("write");
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    error_ = errno_string("fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), dst.c_str()) != 0) {
    error_ = errno_string("rename");
    ::unlink(tmp.c_str());
    return false;
  }
  if (!fsync_dir(dir_)) {
    error_ = errno_string("fsync dir");
    return false;
  }
  return true;
}

std::uint64_t StateStore::bump_generation() {
  std::uint64_t prev = 0;
  Bytes raw;
  bool missing = false;
  if (read_file(dir_ + "/" + kGenerationName, raw, missing) && !raw.empty()) {
    const char* first = reinterpret_cast<const char*>(raw.data());
    // Trailing newline (or any junk) just ends the parse; an unreadable
    // file restarts the epoch at 1, which is still a change of generation.
    (void)std::from_chars(first, first + raw.size(), prev);
  }
  const std::uint64_t next = prev + 1;
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, next);
  (void)ec;
  Bytes text(reinterpret_cast<const std::uint8_t*>(buf),
             reinterpret_cast<const std::uint8_t*>(end));
  text.push_back('\n');
  (void)write_atomic(kGenerationName, text);
  return next;
}

bool StateStore::save(StateKind kind, std::uint64_t generation,
                      const Bytes& body) {
  const Bytes sealed = seal_envelope(kind, generation, body);
  if (!write_atomic(kCheckpointName, sealed)) return false;
  const obs::RecoveryObs& ro = obs::RecoveryObs::instance();
  ro.checkpoints_written.add();
  ro.checkpoint_bytes.add(sealed.size());
  return true;
}

StateStore::LoadStatus StateStore::load(StateKind expected,
                                        std::uint64_t& generation, Bytes& body,
                                        OpenStatus* why) {
  Bytes sealed;
  bool missing = false;
  if (!read_file(checkpoint_path(), sealed, missing)) {
    if (missing) return LoadStatus::kMissing;
    error_ = errno_string("read checkpoint");
    return LoadStatus::kIoError;
  }
  const OpenStatus s = open_envelope(sealed, expected, generation, body);
  if (why != nullptr) *why = s;
  if (s != OpenStatus::kOk) {
    error_ = std::string("checkpoint rejected: ") + open_status_name(s);
    return LoadStatus::kRejected;
  }
  obs::RecoveryObs::instance().checkpoints_restored.add();
  return LoadStatus::kOk;
}

}  // namespace waves::recovery
