// Umbrella header: the full libwaves public API.
//
// Single-stream deterministic (eps) schemes:
//   core::DetWave        — 1s in a sliding window (Theorem 1)
//   core::SumWave        — sums of integers in [0..R] (Theorem 3)
//   core::TsWave         — timestamp windows, duplicated positions (Cor. 1)
//   core::TsSumWave      — sums over timestamp windows
//   core::ModWave        — DetWave on live modulo-N' counters
//   core::CompactWave    — delta/gamma-encoded synopsis serialization
//   core::BasicWave      — the Sec. 3.1 reference structure
//
// Randomized (eps, delta) schemes and the distributed model:
//   core::RandWave, core::MedianCountWave            (Theorem 5)
//   core::DistinctWave                               (Theorem 6)
//   distributed::CountParty, DistinctParty, union_count, distinct_count
//   distributed::Scenario1Counter, Scenario2Counter  (Sec. 3.4)
//
// Extensions (Sec. 5): core::PredicateDistinctWave, core::NthOneWave,
//   core::SlidingAverage, core::FlaggedAverage, core::TimestampedAverage.
//
// Baseline: baseline::EhCount, baseline::EhSum (Datar et al.).
#pragma once

#include "baseline/eh_count.hpp"
#include "baseline/eh_sum.hpp"
#include "core/basic_wave.hpp"
#include "core/compact_wave.hpp"
#include "core/det_wave.hpp"
#include "core/distinct_wave.hpp"
#include "core/extensions/average.hpp"
#include "core/extensions/histogram.hpp"
#include "core/extensions/lp_norm.hpp"
#include "core/extensions/nth_one.hpp"
#include "core/extensions/predicate_sample.hpp"
#include "core/checkpoint.hpp"
#include "core/median_estimator.hpp"
#include "core/mod_wave.hpp"
#include "core/rand_wave.hpp"
#include "core/sum_wave.hpp"
#include "core/ts_sum_wave.hpp"
#include "core/ts_wave.hpp"
#include "distributed/alignment.hpp"
#include "distributed/ingest_driver.hpp"
#include "distributed/party.hpp"
#include "distributed/referee.hpp"
#include "distributed/scenarios.hpp"
#include "gf2/kwise_hash.hpp"
#include "gf2/shared_randomness.hpp"
#include "stream/generators.hpp"
#include "stream/splitters.hpp"
#include "stream/timestamped.hpp"
#include "stream/value_streams.hpp"
