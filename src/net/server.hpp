// The party side of the TCP transport: PartyServer wraps one synopsis
// backend (a distributed::CountParty / DistinctParty, or the Scenario-1
// totals states below) behind a listening socket and answers framed
// Hello / SnapshotRequest messages. The `waved` daemon is a thin CLI shell
// around this class; tests and benches embed it in-process.
//
// Concurrency: two interchangeable I/O cores behind ServerConfig::io_model
// (net/io_model.hpp), both speaking the identical wire protocol:
//
//   threads  one accept-loop thread plus one short-lived thread per
//            connection (the original core, kept for differential testing).
//   epoll    one EventLoop thread multiplexing every connection plus a
//            small fixed worker pool for the synopsis work; push-drift
//            checks are timer-wheel entries, so thousands of idle
//            subscriptions cost no threads (net/event_loop.hpp).
//
// Both cores feed the same frame logic (process_frame below), so replies
// are byte-identical regardless of the core. Backends are internally
// locked (the parties) or locked here (the totals states), so an ingestion
// thread may keep feeding while the referee queries — the model's "parties
// observe, referee asks" split.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "agg/agg_wave.hpp"
#include "core/det_wave.hpp"
#include "core/sum_wave.hpp"
#include "distributed/party.hpp"
#include "net/frame.hpp"
#include "net/io_model.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/delta_live.hpp"

namespace waves::net {

/// Scenario-1 Basic Counting backend: a DetWave plus the lock the bare core
/// class doesn't carry (parties bring their own; the totals wrappers need
/// one here to let ingestion overlap queries).
class BasicPartyState {
 public:
  BasicPartyState(std::uint64_t inv_eps, std::uint64_t window)
      : wave_(inv_eps, window), inv_eps_(inv_eps), window_(window) {}

  void observe(bool bit);
  void observe_batch(const util::PackedBitStream& bits);
  [[nodiscard]] core::Estimate query(std::uint64_t n) const;
  [[nodiscard]] std::uint64_t items() const;
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  /// Monotone mutation counter (the wave's) — the push leg's cheap "did
  /// anything change since the last drift check" gate.
  [[nodiscard]] std::uint64_t change_cursor() const;

  [[nodiscard]] recovery::BasicPartyCheckpoint checkpoint() const;
  /// Replace the wave with the checkpointed state (parameters must match
  /// this state's construction).
  void restore(const recovery::BasicPartyCheckpoint& ck);

 private:
  mutable std::mutex mu_;
  core::DetWave wave_;
  std::uint64_t inv_eps_;
  std::uint64_t window_;
  std::uint64_t items_ = 0;
};

/// Scenario-1 Sum backend (SumWave over integer values in [0..max_value]).
class SumPartyState {
 public:
  SumPartyState(std::uint64_t inv_eps, std::uint64_t window,
                std::uint64_t max_value)
      : wave_(inv_eps, window, max_value),
        inv_eps_(inv_eps),
        window_(window),
        max_value_(max_value) {}

  void observe(std::uint64_t value);
  void observe_batch(std::span<const std::uint64_t> values);
  [[nodiscard]] core::Estimate query(std::uint64_t n) const;
  [[nodiscard]] std::uint64_t items() const;
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }
  /// See BasicPartyState::change_cursor.
  [[nodiscard]] std::uint64_t change_cursor() const;

  [[nodiscard]] recovery::SumPartyCheckpoint checkpoint() const;
  /// Same contract as BasicPartyState::restore.
  void restore(const recovery::SumPartyCheckpoint& ck);

 private:
  mutable std::mutex mu_;
  core::SumWave wave_;
  std::uint64_t inv_eps_;
  std::uint64_t window_;
  std::uint64_t max_value_;
  std::uint64_t items_ = 0;
};

/// Exact-aggregate backend (agg::AggWave over signed int64 values). Same
/// locking contract as the totals states; batch ingest rides the SIMD bulk
/// path.
class AggPartyState {
 public:
  AggPartyState(agg::AggOp op, std::uint64_t window) : wave_(op, window) {}

  void observe(std::int64_t value);
  void observe_batch(std::span<const std::int64_t> values);
  [[nodiscard]] std::int64_t value() const;
  [[nodiscard]] std::uint64_t items() const;
  [[nodiscard]] std::uint64_t window() const noexcept {
    return wave_.window();
  }
  [[nodiscard]] agg::AggOp op() const noexcept { return wave_.op(); }

  [[nodiscard]] recovery::AggPartyCheckpoint checkpoint() const;
  /// Same contract as BasicPartyState::restore.
  void restore(const recovery::AggPartyCheckpoint& ck);

 private:
  mutable std::mutex mu_;
  agg::AggWave wave_;
  std::uint64_t items_ = 0;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0: ephemeral; read back via port()
  std::uint64_t party_id = 0;
  // The daemon's epoch, advertised in HelloAck and stamped on every reply;
  // a StateStore-backed daemon bumps and persists it at startup.
  std::uint64_t generation = 0;
  // Per-I/O-op deadline on connection handlers; a stalled peer can hold a
  // handler thread at most this long per frame.
  std::chrono::milliseconds io_deadline{5000};
  // Answer delta-capable SnapshotRequests (count/distinct roles) with
  // kDeltaReply bodies diffed against the last checkpoint this server
  // handed out. Off, every request gets the v2 full reply — the knob the
  // loopback test and `waved --delta off` use to exercise degradation.
  bool enable_delta = true;
  // Accept kSubscribe and run eps-slack push legs (src/monitor/). Off,
  // subscriptions are rejected with kBadRequest — `waved --push off`.
  bool enable_push = true;
  // Default drift-check cadence for subscriptions that don't carry their
  // own (tag-3 check_every_ms of 0).
  std::chrono::milliseconds push_check{25};
  // Hard cap on live connections (thread-per-connection: this bounds the
  // handler threads; epoll: the fd budget). Over the cap, a fresh accept is
  // answered with one ErrReply{kOverloaded} frame and closed — typed,
  // counted in waves_net_server_overload_rejected_total — so a watcher
  // stampede or a socket leak degrades loudly instead of exhausting the
  // daemon.
  std::size_t max_connections = 64;
  // Which I/O core serves connections (identical wire behavior either
  // way); see net/io_model.hpp for the default + WAVES_IO_MODEL override.
  IoModel io_model = default_io_model();
  // Epoll-core worker threads (0 = default_worker_count()).
  std::size_t io_workers = 0;
};

/// One party daemon: serves exactly one role, determined by which backend
/// the constructor receives (backends are borrowed, not owned — the caller
/// keeps them alive and may keep feeding them).
class PartyServer {
 public:
  PartyServer(ServerConfig cfg, distributed::CountParty* party);
  PartyServer(ServerConfig cfg, distributed::DistinctParty* party);
  PartyServer(ServerConfig cfg, BasicPartyState* party);
  PartyServer(ServerConfig cfg, SumPartyState* party);
  PartyServer(ServerConfig cfg, AggPartyState* party);
  ~PartyServer();

  PartyServer(const PartyServer&) = delete;
  PartyServer& operator=(const PartyServer&) = delete;

  /// Bind + listen + start the accept loop. False if the bind fails.
  [[nodiscard]] bool start();
  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  [[nodiscard]] PartyRole role() const noexcept { return role_; }
  /// Stop accepting, join all threads, close the listener. Idempotent.
  void stop();
  /// Graceful shutdown: stop accepting new connections immediately, then
  /// give in-flight handlers up to `grace` to finish their current exchange
  /// before stopping them. Used by waved's SIGTERM drain.
  void drain(std::chrono::milliseconds grace);
  /// Record that the backend's state was just durably checkpointed; health
  /// replies report milliseconds since the most recent call (~0 = never).
  /// Called from waved's save path — safe from any thread.
  void note_checkpoint();

 private:
  void accept_loop(const std::stop_token& st);
  void serve_connection(Socket sock, const std::stop_token& st);
  // Delta baseline: the party checkpoint most recently shipped to *any*
  // delta-capable client, cursored by an always-bumping serial. The serial
  // (not the party's item count) is the wire cursor, so two clients
  // interleaving requests can never hold different baselines under the same
  // cursor value — a since_cursor that isn't the current serial simply
  // falls back to a full reply. Only the role's matching state is used.
  template <class Checkpoint>
  struct DeltaState {
    std::mutex mu;
    std::uint64_t serial = 0;  // 0 = no baseline handed out yet
    Checkpoint base;
  };

  // Count-role delta state: instead of a full baseline checkpoint, keep
  // the O(instances * levels) shape summary the live encoder diffs
  // against (recovery/delta_live.hpp), plus a retry cache. A client that
  // timed out and retries the same since_cursor would otherwise miss the
  // (already advanced) baseline and force a full resync; as long as
  // nothing was ingested in between, re-shipping the previous body verbatim
  // is exactly equivalent.
  struct CountDeltaState {
    std::mutex mu;
    std::uint64_t serial = 0;  // 0 = no baseline handed out yet
    recovery::CountDeltaBaseline baseline;
    bool cache_valid = false;
    std::uint64_t cached_since = 0;        // request's since_cursor
    std::uint64_t cached_items = 0;        // items_observed at encode time
    std::uint64_t cached_base_cursor = 0;  // reply fields, verbatim
    std::uint64_t cached_cursor = 0;
    Bytes cached_body;
  };

  // One connection's active push subscription (at most one; a replacing
  // kSubscribe restarts the chain). Lives on the handler thread's stack —
  // no cross-connection sharing, so the per-subscription delta baselines
  // need no locks beyond the party's own.
  struct Subscription {
    bool active = false;
    std::uint64_t request_id = 0;
    std::uint64_t n = 0;
    double slack = 1.0;  // absolute threshold, role units (see protocol.hpp)
    std::chrono::milliseconds check{25};
    std::uint64_t seq = 0;     // last pushed seq (0 = none yet)
    std::uint64_t cursor = 0;  // push-chain cursor (0 = no baseline)
    // Drift trackers: what the subscriber last saw.
    std::uint64_t pushed_items = 0;   // count/distinct
    double pushed_value = 0.0;        // basic/sum
    std::uint64_t last_change = 0;    // change_cursor at last check
    // Per-subscription delta baselines (count: live-encoder shape summary;
    // distinct: full checkpoint to diff against).
    recovery::CountDeltaBaseline count_base;
    distributed::DistinctPartyCheckpoint distinct_base;
  };

  // Frames a core must write for one processed request, in order. Both
  // I/O cores run the same builders and only differ in how the bytes reach
  // the peer (blocking send vs. nonblocking write queue), which is what
  // keeps the two cores byte-identical on the wire.
  struct OutFrame {
    MsgType type;
    Bytes payload;
  };
  using Outbox = std::vector<OutFrame>;
  enum class ConnAction : std::uint8_t {
    kKeep,   // connection stays in request/reply (or push) mode
    kClose,  // protocol is lost or the exchange is terminal: flush + close
  };

  [[nodiscard]] HelloAck hello_ack() const;
  [[nodiscard]] HealthReply health_reply(std::uint64_t request_id) const;
  /// The transport-independent frame state machine: decode one frame,
  /// append the reply frames (if any) to `out`, update the connection's
  /// subscription. Runs the post-frame drift check. Called from handler
  /// threads (threads core) and pool workers (epoll core) — everything it
  /// touches beyond `sub`/`out` is internally locked.
  [[nodiscard]] ConnAction process_frame(const Frame& frame, Subscription& sub,
                                         Outbox& out);
  /// Drift check + conditional push; called on every idle tick of a
  /// subscribed connection (threads core: wait_readable timeout; epoll
  /// core: timer-wheel entry).
  void drift_tick(Subscription& sub, Outbox& out);
  /// Builds the role-appropriate reply (or Err) for a decoded request.
  void answer(const SnapshotRequest& req, Outbox& out);
  /// Opens `sub` for a decoded kSubscribe and builds the initial
  /// full-state push (the ack).
  void subscribe(const SubscribeRequest& req, Subscription& sub, Outbox& out);
  /// Unconditional push of the current state (initial ack, drift firing).
  void push_update(Subscription& sub, Outbox& out);
  template <class Party, class Checkpoint>
  void delta_answer(Party* party, DeltaState<Checkpoint>& st,
                    const SnapshotRequest& req, DeltaReply& r) const;
  /// Count-role replacement for delta_answer: O(change) live diff plus a
  /// retry cache (see CountDeltaState).
  void count_delta_answer(const SnapshotRequest& req, DeltaReply& r) const;
  void reap_finished();
  // Epoll-core lifecycle (server_loop.cpp).
  [[nodiscard]] bool loop_start();
  void loop_stop();
  void loop_drain(std::chrono::milliseconds grace);

  ServerConfig cfg_;
  PartyRole role_;
  distributed::CountParty* count_ = nullptr;
  distributed::DistinctParty* distinct_ = nullptr;
  BasicPartyState* basic_ = nullptr;
  SumPartyState* sum_ = nullptr;
  AggPartyState* agg_ = nullptr;

  mutable CountDeltaState count_delta_;
  mutable DeltaState<distributed::DistinctPartyCheckpoint> distinct_delta_;

  Listener listener_;
  std::jthread accept_thread_;

  // Health-probe sources: process-relative steady timestamps in ns. 0 in
  // last_checkpoint_ns_ means "never checkpointed this generation".
  Clock::time_point started_ = Clock::now();
  std::atomic<std::uint64_t> last_checkpoint_ns_{0};

  struct Conn {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conns_mu_;
  std::vector<Conn> conns_;

  // Epoll core (server_loop.cpp); null when io_model == kThreads. The
  // out-of-line deleter keeps LoopCore fully private to that TU.
  struct LoopCore;
  struct LoopCoreDeleter {
    void operator()(LoopCore* core) const;
  };
  std::unique_ptr<LoopCore, LoopCoreDeleter> loop_;
};

}  // namespace waves::net
