// Readiness-driven I/O core: one EventLoop thread multiplexes every
// connection of a listening component, and a small fixed WorkerPool runs
// the synopsis work (checkpoint walks, delta encodes) so the loop thread
// never blocks on a party lock.
//
// EventLoop is epoll(7)-backed on Linux with a poll(2) fallback selected at
// construction (and used everywhere epoll is unavailable), so the same
// binary serves both; the backend only changes how readiness is learned,
// never what the handlers see. Three primitives:
//
//   fds     add_fd/mod_fd/del_fd register a nonblocking fd with a handler
//           and a read/write interest mask; the loop invokes the handler
//           with the ready events (kReadable/kWritable/kError).
//   timers  arm_timer schedules a one-shot callback on a hashed timer
//           wheel (kTimerTick granularity, kTimerSlots slots, multi-lap
//           entries carry a rounds counter). cancel_timer is lazy: the
//           entry is dropped from the id map and the stale slot reference
//           is skipped when its lap comes up — O(1) cancel, no slot scan.
//           This is what makes thousands of idle push subscriptions cheap:
//           a drift check is a wheel entry, not a sleeping thread.
//   post    post() marshals a closure from any thread onto the loop thread
//           (mutex-guarded queue + eventfd/pipe wakeup); the loop drains
//           the queue before each poll. Worker-pool completions use this
//           to rejoin their connection's state machine.
//
// Threading contract: add_fd/mod_fd/del_fd/arm_timer/cancel_timer are
// loop-thread-only; post() and wake() are thread-safe. Handlers run on the
// loop thread and may freely mutate the loop (including deleting their own
// registration).
#pragma once

#include <poll.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"

namespace waves::net {

class EventLoop {
 public:
  // Ready-event mask handed to fd handlers.
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;  // HUP/ERR — peer gone

  using FdHandler = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  // Wheel geometry: 2ms ticks x 512 slots = a ~1s horizon per lap; longer
  // delays ride the rounds counter. Granularity bounds timer lateness at
  // one tick — drift-check cadences (>= 25ms) and io deadlines (seconds)
  // never notice.
  static constexpr std::chrono::milliseconds kTimerTick{2};
  static constexpr std::size_t kTimerSlots = 512;

  /// `prefer_epoll` false forces the poll(2) backend (tests exercise it on
  /// Linux too); epoll setup failure also falls back. ok() reports whether
  /// any backend (and the wakeup fd) came up.
  explicit EventLoop(bool prefer_epoll = true);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool using_epoll() const noexcept { return ep_ >= 0; }

  // -- loop-thread only --------------------------------------------------
  [[nodiscard]] bool add_fd(int fd, bool want_read, bool want_write,
                            FdHandler handler);
  [[nodiscard]] bool mod_fd(int fd, bool want_read, bool want_write);
  void del_fd(int fd);
  [[nodiscard]] std::size_t fd_count() const noexcept { return fds_.size(); }

  TimerId arm_timer(std::chrono::milliseconds delay, std::function<void()> fn);
  void cancel_timer(TimerId id);
  [[nodiscard]] std::size_t timer_count() const noexcept {
    return timers_.size();
  }

  /// Poll + dispatch until the stop token fires (then drains nothing more).
  void run(const std::stop_token& st);

  // -- any thread --------------------------------------------------------
  void post(std::function<void()> fn);
  void wake();

 private:
  struct FdEntry {
    FdHandler handler;
    bool want_read = false;
    bool want_write = false;
  };
  struct Timer {
    std::function<void()> fn;
    std::uint32_t rounds = 0;  // full laps left before this entry fires
    std::uint32_t slot = 0;
  };

  [[nodiscard]] bool backend_add(int fd, bool r, bool w);
  [[nodiscard]] bool backend_mod(int fd, bool r, bool w);
  void backend_del(int fd);
  /// Milliseconds until the next armed slot (-1 = no timers: block).
  [[nodiscard]] int next_timeout_ms() const;
  /// Walk the wheel up to "now", firing due timers.
  void advance_timers();
  void run_posted();
  void drain_wakeup();

  bool ok_ = false;
  int ep_ = -1;            // epoll fd; -1 = poll backend
  int wake_read_ = -1;     // eventfd (both ends equal) or pipe read end
  int wake_write_ = -1;
  std::unordered_map<int, FdEntry> fds_;

  // Poll backend: pollfd set rebuilt when registrations change.
  bool pollset_dirty_ = true;
  std::vector<::pollfd> pollset_;

  Clock::time_point wheel_start_ = Clock::now();
  std::uint64_t ticks_done_ = 0;  // wheel position == ticks_done_ % slots
  TimerId next_timer_id_ = 1;
  std::unordered_map<TimerId, Timer> timers_;
  std::vector<std::vector<TimerId>> slots_{kTimerSlots};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::vector<std::function<void()>> posted_scratch_;
};

/// Fixed-size worker pool: submit() enqueues, workers drain FIFO. The
/// depth gauge (waves_net_loop_queue_depth) tracks jobs queued but not yet
/// started — the loop's backlog signal.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();  // stops and joins; queued-but-unstarted jobs are dropped

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void submit(std::function<void()> job);
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  void worker_loop(const std::stop_token& st);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> q_;
  bool stopping_ = false;
  std::vector<std::jthread> threads_;
};

/// Worker count for a server core: bounded small — the pool exists to keep
/// synopsis work off the loop thread, not to scale with connections.
[[nodiscard]] std::size_t default_worker_count();

}  // namespace waves::net
