#include "net/io_model.hpp"

#include <cstdlib>

namespace waves::net {

IoModel default_io_model() {
#ifdef __linux__
  IoModel m = IoModel::kEpoll;
#else
  IoModel m = IoModel::kThreads;
#endif
  if (const char* env = std::getenv("WAVES_IO_MODEL"); env != nullptr) {
    (void)parse_io_model(env, m);  // malformed: keep the platform default
  }
  return m;
}

const char* io_model_name(IoModel m) {
  return m == IoModel::kEpoll ? "epoll" : "threads";
}

bool parse_io_model(std::string_view s, IoModel& out) {
  if (s == "epoll") {
    out = IoModel::kEpoll;
    return true;
  }
  if (s == "threads") {
    out = IoModel::kThreads;
    return true;
  }
  return false;
}

}  // namespace waves::net
