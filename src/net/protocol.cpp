#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace waves::net {

namespace {

using distributed::get_fixed64;
using distributed::get_varint;
using distributed::put_fixed64;
using distributed::put_varint;

// Decoders parse into a scratch value and require full consumption, so a
// failed decode leaves `out` untouched and trailing garbage is rejected.
bool consumed(const Bytes& in, std::size_t at) { return at == in.size(); }

}  // namespace

const char* role_name(PartyRole r) {
  switch (r) {
    case PartyRole::kCount:
      return "count";
    case PartyRole::kDistinct:
      return "distinct";
    case PartyRole::kBasic:
      return "basic";
    case PartyRole::kSum:
      return "sum";
  }
  return "unknown";
}

bool role_from_name(const std::string& name, PartyRole& out) {
  if (name == "count") out = PartyRole::kCount;
  else if (name == "distinct") out = PartyRole::kDistinct;
  else if (name == "basic") out = PartyRole::kBasic;
  else if (name == "sum") out = PartyRole::kSum;
  else return false;
  return true;
}

bool valid_role(std::uint8_t r) {
  return r >= static_cast<std::uint8_t>(PartyRole::kCount) &&
         r <= static_cast<std::uint8_t>(PartyRole::kSum);
}

Bytes Hello::encode() const {
  Bytes out;
  put_varint(out, client_id);
  return out;
}

bool Hello::decode(const Bytes& in, Hello& out) {
  Hello h;
  std::size_t at = 0;
  if (!get_varint(in, at, h.client_id) || !consumed(in, at)) return false;
  out = h;
  return true;
}

Bytes HelloAck::encode() const {
  Bytes out;
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, party_id);
  put_varint(out, instances);
  put_varint(out, window);
  put_varint(out, items_observed);
  put_varint(out, generation);
  return out;
}

bool HelloAck::decode(const Bytes& in, HelloAck& out) {
  HelloAck a;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, role) || role > 0xFF ||
      !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, a.party_id) || !get_varint(in, at, a.instances) ||
      !get_varint(in, at, a.window) ||
      !get_varint(in, at, a.items_observed) ||
      !get_varint(in, at, a.generation) || !consumed(in, at)) {
    return false;
  }
  a.role = static_cast<PartyRole>(role);
  out = a;
  return true;
}

void SnapshotRequest::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, n);
  if (delta_capable) {
    put_varint(out, 1);
    put_varint(out, since_cursor);
  }
}

Bytes SnapshotRequest::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool SnapshotRequest::decode(const Bytes& in, SnapshotRequest& out) {
  SnapshotRequest r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, role) ||
      role > 0xFF || !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.n)) {
    return false;
  }
  // v2 form ends here; the v3 form appends exactly `1, since_cursor`.
  if (!consumed(in, at)) {
    std::uint64_t capable = 0;
    if (!get_varint(in, at, capable) || capable != 1 ||
        !get_varint(in, at, r.since_cursor) || !consumed(in, at)) {
      return false;
    }
    r.delta_capable = true;
  }
  r.role = static_cast<PartyRole>(role);
  out = r;
  return true;
}

void CountReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  distributed::encode_into(out,
                           std::span<const core::RandWaveSnapshot>(snapshots));
}

Bytes CountReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool CountReply::decode(const Bytes& in, CountReply& out) {
  CountReply r;
  std::size_t at = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation)) {
    return false;
  }
  // decode_snapshots consumes a whole buffer, so hand it the remainder.
  const Bytes rest(in.begin() + static_cast<std::ptrdiff_t>(at), in.end());
  if (!distributed::decode_snapshots(rest, r.snapshots)) return false;
  out = std::move(r);
  return true;
}

void DistinctReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  distributed::encode_into(out,
                           std::span<const core::DistinctSnapshot>(snapshots));
}

Bytes DistinctReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool DistinctReply::decode(const Bytes& in, DistinctReply& out) {
  DistinctReply r;
  std::size_t at = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation)) {
    return false;
  }
  const Bytes rest(in.begin() + static_cast<std::ptrdiff_t>(at), in.end());
  if (!distributed::decode_snapshots(rest, r.snapshots)) return false;
  out = std::move(r);
  return true;
}

Bytes TotalReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, generation);
  put_fixed64(out, std::bit_cast<std::uint64_t>(value));
  put_varint(out, exact ? 1 : 0);
  put_varint(out, items_observed);
  return out;
}

bool TotalReply::decode(const Bytes& in, TotalReply& out) {
  TotalReply r;
  std::size_t at = 0;
  std::uint64_t bits = 0;
  std::uint64_t exact = 0;
  if (!get_varint(in, at, r.request_id) ||
      !get_varint(in, at, r.generation) || !get_fixed64(in, at, bits) ||
      !get_varint(in, at, exact) || exact > 1 ||
      !get_varint(in, at, r.items_observed) || !consumed(in, at)) {
    return false;
  }
  r.value = std::bit_cast<double>(bits);
  r.exact = exact == 1;
  out = r;
  return true;
}

void DeltaReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, base_cursor);
  put_varint(out, cursor);
  put_varint(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

Bytes DeltaReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool DeltaReply::decode(const Bytes& in, DeltaReply& out) {
  DeltaReply r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, role) || role > 0xFF ||
      !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.base_cursor) || !get_varint(in, at, r.cursor) ||
      !get_varint(in, at, len) || len > in.size() - at) {
    return false;
  }
  r.body.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                in.begin() + static_cast<std::ptrdiff_t>(at + len));
  at += len;
  if (!consumed(in, at)) return false;
  r.role = static_cast<PartyRole>(role);
  out = std::move(r);
  return true;
}

Bytes ErrReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(code));
  put_varint(out, message.size());
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

bool ErrReply::decode(const Bytes& in, ErrReply& out) {
  ErrReply e;
  std::size_t at = 0;
  std::uint64_t code = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, e.request_id) || !get_varint(in, at, code) ||
      code < 1 || code > 4 || !get_varint(in, at, len) ||
      len > in.size() - at) {
    return false;
  }
  e.message.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(at + len));
  at += len;
  if (!consumed(in, at)) return false;
  e.code = static_cast<ErrCode>(code);
  out = std::move(e);
  return true;
}

}  // namespace waves::net
