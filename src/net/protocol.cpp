#include "net/protocol.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace waves::net {

namespace {

using distributed::get_fixed64;
using distributed::get_varint;
using distributed::put_fixed64;
using distributed::put_varint;

// Decoders parse into a scratch value and require full consumption, so a
// failed decode leaves `out` untouched and trailing garbage is rejected.
bool consumed(const Bytes& in, std::size_t at) { return at == in.size(); }

}  // namespace

const char* role_name(PartyRole r) {
  switch (r) {
    case PartyRole::kCount:
      return "count";
    case PartyRole::kDistinct:
      return "distinct";
    case PartyRole::kBasic:
      return "basic";
    case PartyRole::kSum:
      return "sum";
    case PartyRole::kAgg:
      return "agg";
  }
  return "unknown";
}

bool role_from_name(const std::string& name, PartyRole& out) {
  if (name == "count") out = PartyRole::kCount;
  else if (name == "distinct") out = PartyRole::kDistinct;
  else if (name == "basic") out = PartyRole::kBasic;
  else if (name == "sum") out = PartyRole::kSum;
  else if (name == "agg") out = PartyRole::kAgg;
  else return false;
  return true;
}

bool valid_role(std::uint8_t r) {
  return r >= static_cast<std::uint8_t>(PartyRole::kCount) &&
         r <= static_cast<std::uint8_t>(PartyRole::kAgg);
}

Bytes Hello::encode() const {
  Bytes out;
  put_varint(out, client_id);
  return out;
}

bool Hello::decode(const Bytes& in, Hello& out) {
  Hello h;
  std::size_t at = 0;
  if (!get_varint(in, at, h.client_id) || !consumed(in, at)) return false;
  out = h;
  return true;
}

Bytes HelloAck::encode() const {
  Bytes out;
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, party_id);
  put_varint(out, instances);
  put_varint(out, window);
  put_varint(out, items_observed);
  put_varint(out, generation);
  return out;
}

bool HelloAck::decode(const Bytes& in, HelloAck& out) {
  HelloAck a;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, role) || role > 0xFF ||
      !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, a.party_id) || !get_varint(in, at, a.instances) ||
      !get_varint(in, at, a.window) ||
      !get_varint(in, at, a.items_observed) ||
      !get_varint(in, at, a.generation) || !consumed(in, at)) {
    return false;
  }
  a.role = static_cast<PartyRole>(role);
  out = a;
  return true;
}

void SnapshotRequest::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, n);
  // Extension tags in strictly increasing order (canonical form).
  if (delta_capable) {
    put_varint(out, 1);
    put_varint(out, since_cursor);
  }
  if (trace_id != 0) {
    put_varint(out, 2);
    put_varint(out, trace_id);
    put_varint(out, parent_span_id);
  }
}

Bytes SnapshotRequest::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool SnapshotRequest::decode(const Bytes& in, SnapshotRequest& out) {
  SnapshotRequest r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, role) ||
      role > 0xFF || !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.n)) {
    return false;
  }
  // v2 form ends here; v3 appends tagged extension blocks, tags strictly
  // increasing. The original v3 delta form (`1, since_cursor`) is the
  // lone-tag-1 case. Unknown tags fail the decode: extensions are only
  // sent to peers expected to understand them (see protocol.hpp).
  std::uint64_t last_tag = 0;
  while (!consumed(in, at)) {
    std::uint64_t tag = 0;
    if (!get_varint(in, at, tag) || tag <= last_tag) return false;
    last_tag = tag;
    if (tag == 1) {
      if (!get_varint(in, at, r.since_cursor)) return false;
      r.delta_capable = true;
    } else if (tag == 2) {
      if (!get_varint(in, at, r.trace_id) || r.trace_id == 0 ||
          !get_varint(in, at, r.parent_span_id)) {
        return false;
      }
    } else {
      return false;
    }
  }
  r.role = static_cast<PartyRole>(role);
  out = r;
  return true;
}

void CountReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  distributed::encode_into(out,
                           std::span<const core::RandWaveSnapshot>(snapshots));
}

Bytes CountReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool CountReply::decode(const Bytes& in, CountReply& out) {
  CountReply r;
  std::size_t at = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation)) {
    return false;
  }
  // decode_snapshots consumes a whole buffer, so hand it the remainder.
  const Bytes rest(in.begin() + static_cast<std::ptrdiff_t>(at), in.end());
  if (!distributed::decode_snapshots(rest, r.snapshots)) return false;
  out = std::move(r);
  return true;
}

void DistinctReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  distributed::encode_into(out,
                           std::span<const core::DistinctSnapshot>(snapshots));
}

Bytes DistinctReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool DistinctReply::decode(const Bytes& in, DistinctReply& out) {
  DistinctReply r;
  std::size_t at = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation)) {
    return false;
  }
  const Bytes rest(in.begin() + static_cast<std::ptrdiff_t>(at), in.end());
  if (!distributed::decode_snapshots(rest, r.snapshots)) return false;
  out = std::move(r);
  return true;
}

Bytes TotalReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, generation);
  put_fixed64(out, std::bit_cast<std::uint64_t>(value));
  put_varint(out, exact ? 1 : 0);
  put_varint(out, items_observed);
  return out;
}

bool TotalReply::decode(const Bytes& in, TotalReply& out) {
  TotalReply r;
  std::size_t at = 0;
  std::uint64_t bits = 0;
  std::uint64_t exact = 0;
  if (!get_varint(in, at, r.request_id) ||
      !get_varint(in, at, r.generation) || !get_fixed64(in, at, bits) ||
      !get_varint(in, at, exact) || exact > 1 ||
      !get_varint(in, at, r.items_observed) || !consumed(in, at)) {
    return false;
  }
  r.value = std::bit_cast<double>(bits);
  r.exact = exact == 1;
  out = r;
  return true;
}

Bytes AggReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, generation);
  put_varint(out, static_cast<std::uint64_t>(op));
  put_fixed64(out, std::bit_cast<std::uint64_t>(value));
  put_varint(out, items_observed);
  put_varint(out, window);
  return out;
}

bool AggReply::decode(const Bytes& in, AggReply& out) {
  AggReply r;
  std::size_t at = 0;
  std::uint64_t op = 0;
  std::uint64_t bits = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, op) || op > 0xFF ||
      !agg::valid_agg_op(static_cast<std::uint8_t>(op)) ||
      !get_fixed64(in, at, bits) || !get_varint(in, at, r.items_observed) ||
      !get_varint(in, at, r.window) || !consumed(in, at)) {
    return false;
  }
  r.op = static_cast<agg::AggOp>(op);
  r.value = std::bit_cast<std::int64_t>(bits);
  out = r;
  return true;
}

void DeltaReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, base_cursor);
  put_varint(out, cursor);
  put_varint(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

Bytes DeltaReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool DeltaReply::decode(const Bytes& in, DeltaReply& out) {
  // Fields land in locals until everything (including full consumption) is
  // validated, then the body is assigned into out — so the all-or-nothing
  // contract holds AND a caller that reuses one DeltaReply across rounds
  // keeps its body's high-water capacity (the client's per-link scratch).
  DeltaReply r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, role) || role > 0xFF ||
      !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.base_cursor) || !get_varint(in, at, r.cursor) ||
      !get_varint(in, at, len) || len > in.size() - at ||
      !consumed(in, at + len)) {
    return false;
  }
  out.request_id = r.request_id;
  out.generation = r.generation;
  out.role = static_cast<PartyRole>(role);
  out.base_cursor = r.base_cursor;
  out.cursor = r.cursor;
  out.body.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                  in.begin() + static_cast<std::ptrdiff_t>(at + len));
  return true;
}

Bytes ErrReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(code));
  put_varint(out, message.size());
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

void SubscribeRequest::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, n);
  // Extension tags in strictly increasing order (canonical form).
  if (delta_capable) {
    put_varint(out, 1);
    put_varint(out, since_cursor);
  }
  if (trace_id != 0) {
    put_varint(out, 2);
    put_varint(out, trace_id);
    put_varint(out, parent_span_id);
  }
  if (has_slack) {
    put_varint(out, 3);
    put_fixed64(out, std::bit_cast<std::uint64_t>(slack));
    put_varint(out, check_every_ms);
  }
}

Bytes SubscribeRequest::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool SubscribeRequest::decode(const Bytes& in, SubscribeRequest& out) {
  SubscribeRequest r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, role) ||
      role > 0xFF || !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.n)) {
    return false;
  }
  // Same tagged-extension rules as SnapshotRequest: tags strictly
  // increasing, unknown tags fail, all-or-nothing. Tag 3 (slack) is only
  // meaningful on subscriptions, so it lives here and SnapshotRequest
  // keeps rejecting it.
  std::uint64_t last_tag = 0;
  while (!consumed(in, at)) {
    std::uint64_t tag = 0;
    if (!get_varint(in, at, tag) || tag <= last_tag) return false;
    last_tag = tag;
    if (tag == 1) {
      if (!get_varint(in, at, r.since_cursor)) return false;
      r.delta_capable = true;
    } else if (tag == 2) {
      if (!get_varint(in, at, r.trace_id) || r.trace_id == 0 ||
          !get_varint(in, at, r.parent_span_id)) {
        return false;
      }
    } else if (tag == 3) {
      std::uint64_t bits = 0;
      if (!get_fixed64(in, at, bits) ||
          !get_varint(in, at, r.check_every_ms)) {
        return false;
      }
      const double slack = std::bit_cast<double>(bits);
      // A non-finite or non-positive slack would make the push leg either
      // never or always fire; reject it as hostile rather than guessing.
      if (!std::isfinite(slack) || slack <= 0.0) return false;
      r.slack = slack;
      r.has_slack = true;
    } else {
      return false;
    }
  }
  r.role = static_cast<PartyRole>(role);
  out = r;
  return true;
}

void PushUpdate::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, seq);
  put_varint(out, generation);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, items_observed);
  put_varint(out, base_cursor);
  put_varint(out, cursor);
  put_varint(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

Bytes PushUpdate::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool PushUpdate::decode(const Bytes& in, PushUpdate& out) {
  // Same shape as DeltaReply::decode: validate everything (including full
  // consumption) into locals, then assign field-by-field so a subscriber
  // that reuses one PushUpdate across updates keeps its body capacity.
  PushUpdate r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.seq) ||
      r.seq == 0 || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, role) || role > 0xFF ||
      !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.items_observed) ||
      !get_varint(in, at, r.base_cursor) || !get_varint(in, at, r.cursor) ||
      !get_varint(in, at, len) || len > in.size() - at ||
      !consumed(in, at + len)) {
    return false;
  }
  out.request_id = r.request_id;
  out.seq = r.seq;
  out.generation = r.generation;
  out.role = static_cast<PartyRole>(role);
  out.items_observed = r.items_observed;
  out.base_cursor = r.base_cursor;
  out.cursor = r.cursor;
  out.body.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                  in.begin() + static_cast<std::ptrdiff_t>(at + len));
  return true;
}

Bytes Unsubscribe::encode() const {
  Bytes out;
  put_varint(out, request_id);
  return out;
}

bool Unsubscribe::decode(const Bytes& in, Unsubscribe& out) {
  Unsubscribe u;
  std::size_t at = 0;
  if (!get_varint(in, at, u.request_id) || !consumed(in, at)) return false;
  out = u;
  return true;
}

void EstimateUpdate::encode_into(Bytes& out) const {
  put_varint(out, seq);
  put_varint(out, round);
  put_varint(out, status);
  put_fixed64(out, std::bit_cast<std::uint64_t>(value));
  put_varint(out, exact ? 1 : 0);
  put_varint(out, n);
  put_varint(out, missing);
  put_fixed64(out, std::bit_cast<std::uint64_t>(error_slack));
}

Bytes EstimateUpdate::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool EstimateUpdate::decode(const Bytes& in, EstimateUpdate& out) {
  EstimateUpdate r;
  std::size_t at = 0;
  std::uint64_t status = 0;
  std::uint64_t bits = 0;
  std::uint64_t exact = 0;
  std::uint64_t slack_bits = 0;
  if (!get_varint(in, at, r.seq) || r.seq == 0 ||
      !get_varint(in, at, r.round) || !get_varint(in, at, status) ||
      status < 1 || status > 3 || !get_fixed64(in, at, bits) ||
      !get_varint(in, at, exact) || exact > 1 || !get_varint(in, at, r.n) ||
      !get_varint(in, at, r.missing) || !get_fixed64(in, at, slack_bits) ||
      !consumed(in, at)) {
    return false;
  }
  r.status = static_cast<std::uint8_t>(status);
  r.value = std::bit_cast<double>(bits);
  r.exact = exact == 1;
  r.error_slack = std::bit_cast<double>(slack_bits);
  out = r;
  return true;
}

bool valid_metrics_format(std::uint8_t f) {
  return f >= static_cast<std::uint8_t>(MetricsFormat::kProm) &&
         f <= static_cast<std::uint8_t>(MetricsFormat::kTrace);
}

Bytes MetricsRequest::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(format));
  put_varint(out, trace_filter);
  return out;
}

bool MetricsRequest::decode(const Bytes& in, MetricsRequest& out) {
  MetricsRequest r;
  std::size_t at = 0;
  std::uint64_t format = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, format) ||
      format > 0xFF || !valid_metrics_format(static_cast<std::uint8_t>(format)) ||
      !get_varint(in, at, r.trace_filter) || !consumed(in, at)) {
    return false;
  }
  r.format = static_cast<MetricsFormat>(format);
  out = r;
  return true;
}

void MetricsReply::encode_into(Bytes& out) const {
  put_varint(out, request_id);
  put_varint(out, generation);
  put_varint(out, static_cast<std::uint64_t>(format));
  put_varint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

Bytes MetricsReply::encode() const {
  Bytes out;
  encode_into(out);
  return out;
}

bool MetricsReply::decode(const Bytes& in, MetricsReply& out) {
  MetricsReply r;
  std::size_t at = 0;
  std::uint64_t format = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, format) || format > 0xFF ||
      !valid_metrics_format(static_cast<std::uint8_t>(format)) ||
      !get_varint(in, at, len) || len > in.size() - at) {
    return false;
  }
  r.text.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                in.begin() + static_cast<std::ptrdiff_t>(at + len));
  at += len;
  if (!consumed(in, at)) return false;
  r.format = static_cast<MetricsFormat>(format);
  out = std::move(r);
  return true;
}

Bytes HealthRequest::encode() const {
  Bytes out;
  put_varint(out, request_id);
  return out;
}

bool HealthRequest::decode(const Bytes& in, HealthRequest& out) {
  HealthRequest r;
  std::size_t at = 0;
  if (!get_varint(in, at, r.request_id) || !consumed(in, at)) return false;
  out = r;
  return true;
}

Bytes HealthReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_varint(out, static_cast<std::uint64_t>(role));
  put_varint(out, party_id);
  put_varint(out, generation);
  put_varint(out, items_observed);
  put_varint(out, checkpoint_age_ms);
  put_varint(out, uptime_ms);
  return out;
}

bool HealthReply::decode(const Bytes& in, HealthReply& out) {
  HealthReply r;
  std::size_t at = 0;
  std::uint64_t role = 0;
  if (!get_varint(in, at, r.request_id) || !get_varint(in, at, role) ||
      role > 0xFF || !valid_role(static_cast<std::uint8_t>(role)) ||
      !get_varint(in, at, r.party_id) || !get_varint(in, at, r.generation) ||
      !get_varint(in, at, r.items_observed) ||
      !get_varint(in, at, r.checkpoint_age_ms) ||
      !get_varint(in, at, r.uptime_ms) || !consumed(in, at)) {
    return false;
  }
  r.role = static_cast<PartyRole>(role);
  out = r;
  return true;
}

bool ErrReply::decode(const Bytes& in, ErrReply& out) {
  ErrReply e;
  std::size_t at = 0;
  std::uint64_t code = 0;
  std::uint64_t len = 0;
  if (!get_varint(in, at, e.request_id) || !get_varint(in, at, code) ||
      code < 1 || code > 5 || !get_varint(in, at, len) ||
      len > in.size() - at) {
    return false;
  }
  e.message.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                   in.begin() + static_cast<std::ptrdiff_t>(at + len));
  at += len;
  if (!consumed(in, at)) return false;
  e.code = static_cast<ErrCode>(code);
  out = std::move(e);
  return true;
}

}  // namespace waves::net
