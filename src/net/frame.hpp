// Length-prefixed message framing for the waves TCP protocol.
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic "WAVE"
//   4       1     protocol version (kProtocolVersion)
//   5       1     message type (MsgType)
//   6       4     payload length, u32 little-endian (<= kMaxPayload)
//   10      len   payload — a distributed::wire / net::protocol encoding
//
// The 10-byte header is read first and validated before any payload byte is
// accepted, so a malformed peer costs at most one header read; reads honor
// the caller's deadline end to end. read_frame never returns a partially
// filled Frame: on any non-kOk status `out` is untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.hpp"

namespace waves::net {

inline constexpr std::array<std::uint8_t, 4> kMagic{'W', 'A', 'V', 'E'};
// v2: HelloAck and every reply carry the party's generation (epoch) so a
// referee can spot a mid-round restart. v1 peers are rejected at the header.
// v3: SnapshotRequest may carry a delta cursor and servers may answer with
// kDeltaReply. v2 frames are still accepted on read (the extension is
// opt-in per request), so v2 peers interoperate on the full-snapshot path.
// Still v3: SnapshotRequest's trailing extension is generalized to tagged
// blocks (tag 1 = delta cursor, tag 2 = trace context) and two additive
// message types carry metrics scrapes (kMetricsRequest/kMetricsReply).
// Both are opt-in per request and never sent unsolicited, so older v3
// peers that don't know them interoperate on every existing path; see
// docs/networking.md for the exact compatibility rule.
// Still v3 (additive): the continuous-monitoring subsystem adds
// kSubscribe/kPushUpdate/kUnsubscribe. kPushUpdate is the one deliberate
// exception to "never unsolicited": after a peer opts in with kSubscribe,
// the server may write kPushUpdate frames at any frame boundary until the
// subscription ends. Peers that never subscribe never see one.
// Still v3 (additive): kHealthRequest/kHealthReply carry liveness probes
// (role, generation, items, checkpoint age, uptime). Handshake-free like
// the metrics pair, never unsolicited, so older v3 peers interoperate on
// every existing path.
inline constexpr std::uint8_t kProtocolVersion = 3;
inline constexpr std::uint8_t kMinProtocolVersion = 2;
inline constexpr std::size_t kHeaderSize = 10;
// Generous bound: an eps=0.01 distinct snapshot set is ~MBs; 64 MiB leaves
// room while keeping a hostile length prefix from allocating gigabytes.
inline constexpr std::uint32_t kMaxPayload = 1u << 26;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kSnapshotRequest = 3,
  kCountReply = 4,
  kDistinctReply = 5,
  kTotalReply = 6,
  kErr = 7,
  kDeltaReply = 8,  // v3: party-checkpoint delta against a cursored baseline
  kMetricsRequest = 9,  // v3 additive: remote scrape of the obs registry
  kMetricsReply = 10,
  kAggReply = 11,  // v3 additive: exact aggregate from an agg-role party
  // v3 additive continuous-monitoring trio (src/monitor/): a subscriber
  // registers an eps-slack push leg, the server streams kPushUpdate frames
  // whenever the local estimate drifts past the subscription's slack, and
  // kUnsubscribe returns the connection to request/reply mode.
  kSubscribe = 12,
  kPushUpdate = 13,
  kUnsubscribe = 14,
  // v3 additive liveness pair (src/supervise/): handshake-free probe of a
  // daemon's role/generation/items/checkpoint-age/uptime, answered with
  // kHealthReply (or kErr on a malformed request).
  kHealthRequest = 15,
  kHealthReply = 16,
};

[[nodiscard]] bool valid_msg_type(std::uint8_t t);

struct Frame {
  MsgType type = MsgType::kErr;
  std::vector<std::uint8_t> payload;
};

/// Serialize a header for `type` + `payload_len` into a 10-byte buffer.
[[nodiscard]] std::array<std::uint8_t, kHeaderSize> put_header(
    MsgType type, std::uint32_t payload_len);

/// Validate a header buffer: magic, version, known type, length bound.
/// On success fills type/len and returns true; on failure touches nothing.
[[nodiscard]] bool parse_header(const std::uint8_t* buf, MsgType& type,
                                std::uint32_t& len);

/// Header + payload in one send_all (single buffer, one syscall in the
/// common case). False on timeout or connection error.
[[nodiscard]] bool write_frame(Socket& sock, MsgType type,
                               const std::vector<std::uint8_t>& payload,
                               Deadline dl);

enum class ReadStatus {
  kOk,
  kTimeout,
  kClosed,     // clean EOF at a frame boundary (or mid-frame: peer gone)
  kMalformed,  // bad magic/version/type or oversized length
};

[[nodiscard]] ReadStatus read_frame(Socket& sock, Frame& out, Deadline dl);

}  // namespace waves::net
