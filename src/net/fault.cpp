#include "net/fault.hpp"

#if WAVES_FAULTS_ENABLED

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "obs/recovery_obs.hpp"

namespace waves::net {

namespace {

struct Plan {
  bool armed = false;
  std::uint64_t seed = 0;
  double drop = 0.0;
  double delay = 0.0;
  std::uint32_t delay_ms = 0;
  double truncate = 0.0;
  double corrupt = 0.0;
  double reset = 0.0;
};

std::mutex g_mu;
Plan g_plan;                      // guarded by g_mu for (re)arming
std::atomic<bool> g_armed{false}; // fast-path gate, set after g_plan is final
std::atomic<std::uint64_t> g_event{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool parse_prob(const std::string& v, double& out) {
  char* end = nullptr;
  const double p = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || p < 0.0 || p > 1.0) return false;
  out = p;
  return true;
}

// "seed=S,drop=P,delay=P:MS,truncate=P,corrupt=P,reset=P" — keys optional,
// any order; unknown keys reject the whole spec so typos fail loudly.
bool parse_spec(const char* spec, Plan& out) {
  Plan p;
  std::string s(spec);
  std::size_t at = 0;
  while (at < s.size()) {
    std::size_t comma = s.find(',', at);
    if (comma == std::string::npos) comma = s.size();
    const std::string field = s.substr(at, comma - at);
    at = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      p.seed = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0') return false;
    } else if (key == "drop") {
      if (!parse_prob(val, p.drop)) return false;
    } else if (key == "delay") {
      const std::size_t colon = val.find(':');
      if (!parse_prob(val.substr(0, colon), p.delay)) return false;
      if (colon != std::string::npos) {
        char* end = nullptr;
        const unsigned long ms = std::strtoul(val.c_str() + colon + 1, &end, 10);
        if (end == val.c_str() + colon + 1 || *end != '\0' || ms > 60'000) {
          return false;
        }
        p.delay_ms = static_cast<std::uint32_t>(ms);
      } else {
        p.delay_ms = 10;
      }
    } else if (key == "truncate") {
      if (!parse_prob(val, p.truncate)) return false;
    } else if (key == "corrupt") {
      if (!parse_prob(val, p.corrupt)) return false;
    } else if (key == "reset") {
      if (!parse_prob(val, p.reset)) return false;
    } else {
      return false;
    }
  }
  p.armed = p.drop > 0 || p.delay > 0 || p.truncate > 0 || p.corrupt > 0 ||
            p.reset > 0;
  out = p;
  return true;
}

void load_env_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* spec = std::getenv("WAVES_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    std::lock_guard<std::mutex> lk(g_mu);
    Plan p;
    if (parse_spec(spec, p) && p.armed) {
      g_plan = p;
      g_armed.store(true, std::memory_order_release);
    }
  });
}

Plan snapshot() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_plan;
}

void count(FaultAction a) {
  const obs::FaultObs& fo = obs::FaultObs::instance();
  switch (a) {
    case FaultAction::kDrop:
      fo.drop.add();
      break;
    case FaultAction::kDelay:
      fo.delay.add();
      break;
    case FaultAction::kTruncate:
      fo.truncate.add();
      break;
    case FaultAction::kCorrupt:
      fo.corrupt.add();
      break;
    case FaultAction::kReset:
      fo.reset.add();
      break;
    case FaultAction::kNone:
      break;
  }
}

// One draw decides the event: the kinds partition [0,1) in priority order,
// so at most one fault fires per event and the outcome is a pure function
// of (seed, event#).
FaultDecision decide(const Plan& p, std::size_t len, bool allow_data_faults) {
  const std::uint64_t word =
      splitmix64(p.seed ^ g_event.fetch_add(1, std::memory_order_relaxed));
  const double r = unit(word);
  FaultDecision d;
  double edge = p.reset;
  if (r < edge) {
    d.action = FaultAction::kReset;
  } else if (r < (edge += p.drop)) {
    d.action = FaultAction::kDrop;
  } else if (allow_data_faults && r < (edge += p.truncate)) {
    d.action = FaultAction::kTruncate;
    d.offset = len > 1 ? (splitmix64(word) % (len - 1)) + 1 : 0;
    if (len <= 1) d.action = FaultAction::kDrop;  // nothing to truncate to
  } else if (allow_data_faults && r < (edge += p.corrupt)) {
    d.action = FaultAction::kCorrupt;
    d.offset = len > 0 ? splitmix64(word) % len : 0;
    d.xor_mask = static_cast<std::uint8_t>((splitmix64(word + 1) % 255) + 1);
    if (len == 0) d.action = FaultAction::kNone;
  } else if (r < edge + p.delay) {
    d.action = FaultAction::kDelay;
  }
  count(d.action);
  if (d.action == FaultAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(p.delay_ms));
    d.action = FaultAction::kNone;
  }
  return d;
}

}  // namespace

bool arm_faults(const char* spec) {
  load_env_once();
  std::lock_guard<std::mutex> lk(g_mu);
  if (spec == nullptr || *spec == '\0') {
    g_plan = Plan{};
    g_armed.store(false, std::memory_order_release);
    return true;
  }
  Plan p;
  if (!parse_spec(spec, p)) return false;
  g_plan = p;
  g_event.store(0, std::memory_order_relaxed);
  g_armed.store(p.armed, std::memory_order_release);
  return true;
}

bool faults_armed() {
  load_env_once();
  return g_armed.load(std::memory_order_acquire);
}

FaultDecision next_send_fault(std::size_t len) {
  if (!faults_armed()) return {};
  return decide(snapshot(), len, /*allow_data_faults=*/true);
}

FaultDecision next_recv_fault() {
  if (!faults_armed()) return {};
  return decide(snapshot(), 0, /*allow_data_faults=*/false);
}

bool next_connect_drop() {
  if (!faults_armed()) return false;
  const FaultDecision d = decide(snapshot(), 0, /*allow_data_faults=*/false);
  return d.action != FaultAction::kNone;
}

}  // namespace waves::net

#endif  // WAVES_FAULTS_ENABLED
