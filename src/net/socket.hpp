// POSIX TCP primitives for the waves transport: RAII fds, deadline-driven
// all-or-nothing I/O, and an ephemeral-port listener.
//
// Everything here is nonblocking under the hood and polls against a
// steady-clock deadline, so no referee round or party daemon can hang on a
// dead peer — the worst case is the caller's deadline. Hosts are IPv4
// literals ("127.0.0.1"); the deployment model is referee-to-parties over a
// trusted network (or loopback in tests/benches), not general name
// resolution.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace waves::net {

using Clock = std::chrono::steady_clock;
using Deadline = Clock::time_point;

[[nodiscard]] inline Deadline deadline_in(std::chrono::milliseconds ms) {
  return Clock::now() + ms;
}

enum class IoResult {
  kOk,
  kTimeout,  // deadline passed before the transfer completed
  kClosed,   // peer closed the connection
  kError,    // socket error (connection reset, bad fd, ...)
};

/// Move-only connected-socket handle. I/O never transfers partially to the
/// caller: a failed recv_exact delivers no bytes of the message, a failed
/// send_all may have written a prefix (the connection is then dead to the
/// protocol and must be dropped).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept;
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  [[nodiscard]] bool send_all(const void* data, std::size_t len, Deadline dl);
  [[nodiscard]] IoResult recv_exact(void* data, std::size_t len, Deadline dl);
  /// Wait until at least one byte (or EOF) is readable. False on timeout.
  [[nodiscard]] bool wait_readable(Deadline dl);

 private:
  int fd_ = -1;
};

/// Connect to host:port by `dl`; invalid Socket on failure. `timed_out`
/// (optional) distinguishes deadline expiry from refusal.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 Deadline dl, bool* timed_out = nullptr);

/// One shared socket-option bundle for every fd the transport creates —
/// server, hub, and client sockets all go through here so the options can
/// never drift apart: every fd goes nonblocking, listeners get
/// SO_REUSEADDR (fast restart re-bind), connections get TCP_NODELAY (the
/// protocol is small request/reply frames; Nagle only adds latency).
/// False if the fd can't be made nonblocking (options are best-effort).
enum class SocketKind : std::uint8_t { kListener, kConnection };
[[nodiscard]] bool prepare_socket(int fd, SocketKind kind);

/// Listening socket; port 0 binds an ephemeral port (read it back via
/// port(), which waved prints in its READY line).
class Listener {
 public:
  [[nodiscard]] bool listen_on(const std::string& host, std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  /// One accepted connection, or an invalid Socket on timeout/error. The
  /// accept loop calls this with a short deadline and checks its stop
  /// token between calls.
  [[nodiscard]] Socket accept_one(Deadline dl);
  /// Nonblocking accept of one already-queued connection; invalid Socket
  /// when none is pending. The event-loop accept handler calls this in a
  /// loop until it drains the backlog (accept-until-EAGAIN), so one
  /// readiness event never strands queued peers.
  [[nodiscard]] Socket try_accept();
  /// Raw listening fd for event-loop registration.
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }
  void close() noexcept { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace waves::net
