#include "net/socket.hpp"

#include <arpa/inet.h>
#include <vector>

#include "net/fault.hpp"
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace waves::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Remaining whole milliseconds until `dl`, clamped to [0, INT_MAX] for
// poll(2). Rounds up so a 0.5ms remainder polls for 1ms instead of spinning.
int poll_budget_ms(Deadline dl) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      dl - Clock::now() + std::chrono::microseconds(999));
  if (left.count() <= 0) return 0;
  constexpr long kMax = 60'000;  // re-check even if a caller passes "forever"
  return static_cast<int>(left.count() < kMax ? left.count() : kMax);
}

// Wait for `events` on fd until the deadline. True iff the event arrived.
bool poll_until(int fd, short events, Deadline dl) {
  while (true) {
    const int budget = poll_budget_ms(dl);
    if (budget <= 0 && Clock::now() >= dl) return false;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR) return false;
    // rc == 0 (or EINTR): loop re-checks the deadline.
  }
}

}  // namespace

bool prepare_socket(int fd, SocketKind kind) {
  if (fd < 0 || !set_nonblocking(fd)) return false;
  const int one = 1;
  if (kind == SocketKind::kListener) {
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return true;
}

Socket::Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(const void* data, std::size_t len, Deadline dl) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::vector<std::uint8_t> mangled;  // only allocated when a fault fires
  bool fail_after = false;
  if constexpr (kFaultsEnabled) {
    const FaultDecision f = next_send_fault(len);
    switch (f.action) {
      case FaultAction::kDrop:
        return false;
      case FaultAction::kReset:
        close();
        return false;
      case FaultAction::kTruncate:
        len = f.offset;  // deliver a strict prefix, then report failure
        fail_after = true;
        break;
      case FaultAction::kCorrupt:
        mangled.assign(p, p + len);
        mangled[f.offset] ^= f.xor_mask;
        p = mangled.data();
        break;
      case FaultAction::kDelay:
      case FaultAction::kNone:
        break;
    }
  }
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_until(fd_, POLLOUT, dl)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone or hard error
  }
  return !fail_after;
}

IoResult Socket::recv_exact(void* data, std::size_t len, Deadline dl) {
  auto* p = static_cast<std::uint8_t*>(data);
  if constexpr (kFaultsEnabled) {
    const FaultDecision f = next_recv_fault();
    if (f.action == FaultAction::kDrop) return IoResult::kError;
    if (f.action == FaultAction::kReset) {
      close();
      return IoResult::kError;
    }
  }
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_until(fd_, POLLIN, dl)) return IoResult::kTimeout;
      continue;
    }
    if (errno == EINTR) continue;
    return IoResult::kError;
  }
  return IoResult::kOk;
}

bool Socket::wait_readable(Deadline dl) {
  return poll_until(fd_, POLLIN, dl);
}

Socket tcp_connect(const std::string& host, std::uint16_t port, Deadline dl,
                   bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if constexpr (kFaultsEnabled) {
    if (next_connect_drop()) return Socket{};
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return Socket{};

  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid() || !prepare_socket(s.fd(), SocketKind::kConnection)) {
    return Socket{};
  }

  const int rc =
      ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return Socket{};
    if (!poll_until(s.fd(), POLLOUT, dl)) {
      if (timed_out != nullptr) *timed_out = true;
      return Socket{};
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Socket{};
    }
  }
  return s;
}

bool Listener::listen_on(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;

  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid() || !prepare_socket(s.fd(), SocketKind::kListener)) {
    return false;
  }

  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(s.fd(), SOMAXCONN) != 0) {
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return false;
  }
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(s);
  return true;
}

Socket Listener::accept_one(Deadline dl) {
  while (true) {
    Socket s = try_accept();
    if (s.valid()) return s;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_until(sock_.fd(), POLLIN, dl)) return Socket{};
      continue;
    }
    return Socket{};
  }
}

Socket Listener::try_accept() {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      if (!prepare_socket(s.fd(), SocketKind::kConnection)) return Socket{};
      return s;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Socket{};  // EAGAIN (backlog drained) or a hard error
  }
}

}  // namespace waves::net
