#include "net/client.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <thread>
#include <utility>

#include "net/frame.hpp"
#include "obs/alloc.hpp"
#include "obs/flight.hpp"
#include "obs/net_obs.hpp"
#include "obs/recovery_obs.hpp"
#include "obs/supervise_obs.hpp"
#include "obs/trace.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/delta.hpp"

namespace waves::net {

bool parse_endpoint(const std::string& s, Endpoint& out) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  unsigned port = 0;
  const char* first = s.data() + colon + 1;
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, port);
  if (ec != std::errc{} || ptr != last || port == 0 || port > 65535) {
    return false;
  }
  out.host = s.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

RefereeClient::RefereeClient(std::vector<Endpoint> parties, ClientConfig cfg)
    : parties_(std::move(parties)), cfg_(cfg) {
  links_.reserve(parties_.size());
  breakers_.reserve(parties_.size());
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    links_.push_back(std::make_unique<PartyLink>());
    breakers_.push_back(std::make_unique<Breaker>());
  }
}

void RefereeClient::disconnect_all() const {
  for (const auto& link : links_) {
    std::lock_guard lk(link->mu);
    link->sock.close();
  }
}

namespace {

// Expected reply frame type for a request of the given role.
MsgType reply_type_for(PartyRole role) {
  switch (role) {
    case PartyRole::kCount:
      return MsgType::kCountReply;
    case PartyRole::kDistinct:
      return MsgType::kDistinctReply;
    case PartyRole::kBasic:
    case PartyRole::kSum:
      return MsgType::kTotalReply;
    case PartyRole::kAgg:
      return MsgType::kAggReply;
  }
  return MsgType::kErr;
}

ClientConfig with_instances(ClientConfig cfg, int instances) {
  cfg.expected_instances = instances;
  return cfg;
}

// Folds a decoded DeltaReply into the party's mirror and produces the
// decoded per-instance snapshots through the (cursor, n) cache. `since` is
// the since_cursor the request carried; `snap_into` derives one snapshot
// from one wave checkpoint in place (count: (ck, out); distinct adds the
// window), reusing the cache entry's buffers across rounds. False on any
// cursor/codec mismatch — the caller treats it as a protocol error and
// drops the connection.
template <class Checkpoint, class Snapshot, class SnapInto>
bool apply_delta_reply(const DeltaReply& r, std::uint64_t since,
                       std::uint64_t generation, std::uint64_t n,
                       DeltaMirror<Checkpoint, Snapshot>& m,
                       std::vector<Snapshot>& out, Fetch& f, std::string& err,
                       SnapInto&& snap_into) {
  const auto& obs = obs::NetClientObs::instance();
  if (r.body.empty()) {
    // "Unchanged" echo: only meaningful against the cursor we asked about.
    if (since == 0 || r.cursor != since || r.base_cursor != since ||
        m.cursor != since) {
      err = "empty delta body without a matching cursor";
      return false;
    }
  } else if (r.base_cursor == 0) {
    // Self-contained full body: bootstrap, stale cursor, or server restart.
    Checkpoint now;
    if (!recovery::decode(r.body, now)) {
      err = "undecodable full checkpoint body";
      return false;
    }
    m.base = std::move(now);
    m.cursor = r.cursor;
    m.generation = generation;
    m.cache_valid = false;
    obs.delta_full.add();
  } else if (since != 0 && r.base_cursor == since && m.cursor == since) {
    // Steady-state path: apply into the mirror's scratch and swap, so the
    // retired baseline's vectors carry their capacity into next round. On
    // failure scratch is garbage but unread; base stays the valid mirror.
    if (!recovery::apply_delta_into(m.base, r.body, m.scratch)) {
      err = "undecodable delta body";
      return false;
    }
    std::swap(m.base, m.scratch);
    m.cursor = r.cursor;
    m.cache_valid = false;
    f.delta_applied = true;
    obs.delta_replies.add();
  } else {
    err = "delta reply against a cursor we do not hold";
    return false;
  }

  if (m.cache_valid && m.cache_cursor == m.cursor && m.cache_n == n) {
    obs.snapshot_cache_hits.add();
    f.cache_hit = true;
    out = m.cache;
    return true;
  }
  obs.snapshot_cache_misses.add();
  // Rebuild the decoded-snapshot cache in place — each entry keeps its
  // buffer capacity from the previous round — then hand the caller a copy
  // (the Fetch owns its vector; the cache must survive for the next hit).
  // Building into the cache instead of building fresh and copying into it
  // halves the snapshot allocations of a steady-state delta round (E18).
  m.cache.resize(m.base.waves.size());
  for (std::size_t i = 0; i < m.base.waves.size(); ++i) {
    snap_into(m.base.waves[i], m.cache[i]);
  }
  m.cache_cursor = m.cursor;
  m.cache_n = n;
  m.cache_valid = true;
  out = m.cache;
  return true;
}

}  // namespace

Fetch RefereeClient::attempt(std::size_t party, PartyRole role,
                             std::uint64_t n, obs::TraceContext ctx,
                             Deadline cap) const {
  Fetch f;
  const Endpoint& ep = parties_[party];
  PartyLink& link = *links_[party];
  // Fetches to the same party serialize here; the per-party fan-out threads
  // never contend. Held across the whole exchange so the mirror and the
  // socket stream can't interleave between two requests.
  std::lock_guard lk(link.mu);
  const Deadline dl = std::min(deadline_in(cfg_.request_deadline), cap);
  const auto& obs = obs::NetClientObs::instance();
  // Flight-recorder phase clock: each lap closes one phase. Phases are
  // disjoint by construction — every stretch of the attempt is attributed
  // to exactly one of them.
  auto phase_t = Clock::now();
  auto lap = [&phase_t] {
    const auto now = Clock::now();
    const double d = std::chrono::duration<double>(now - phase_t).count();
    phase_t = now;
    return d;
  };

  // Any transport or protocol failure leaves the byte stream unusable (a
  // late reply would desync the next request), so every failure path closes
  // the link; the next attempt reconnects.
  auto fail = [&](FetchStatus s, std::string msg) {
    link.sock.close();
    f.status = s;
    f.error = std::move(msg);
  };

  if (link.sock.valid()) {
    f.reused_connection = true;
  } else {
    bool connect_timed_out = false;
    Socket sock = tcp_connect(ep.host, ep.port, dl, &connect_timed_out);
    if (!sock.valid()) {
      f.status = connect_timed_out ? FetchStatus::kTimeout
                                   : FetchStatus::kConnectError;
      f.error = (connect_timed_out ? "connect timeout: " : "connect failed: ") +
                ep.host + ":" + std::to_string(ep.port);
      f.connect_s += lap();
      return f;
    }
    link.sock = std::move(sock);
    if (link.ever_connected) obs.reconnects.add();
    link.ever_connected = true;
  }

  auto send_msg = [&](MsgType type, const Bytes& payload) {
    if (!write_frame(link.sock, type, payload, dl)) return false;
    f.bytes_sent += kHeaderSize + payload.size();
    return true;
  };
  // Reads one frame and classifies transport failures into the Fetch.
  auto read_msg = [&](Frame& frame) {
    const ReadStatus rs = read_frame(link.sock, frame, dl);
    switch (rs) {
      case ReadStatus::kOk:
        f.bytes_received += kHeaderSize + frame.payload.size();
        return true;
      case ReadStatus::kTimeout:
        fail(FetchStatus::kTimeout, "reply deadline exceeded");
        return false;
      case ReadStatus::kClosed:
        // Peer died (or dropped an idle keep-alive link); retryable like a
        // failed connect.
        fail(FetchStatus::kConnectError, "connection closed mid-request");
        return false;
      case ReadStatus::kMalformed:
        fail(FetchStatus::kProtocolError, "malformed reply frame");
        return false;
    }
    return false;
  };

  // Per-link reused Frame: read_frame assigns into it, so steady-state
  // keep-alive rounds reuse its payload capacity instead of allocating.
  Frame& frame = link.frame;
  if (!f.reused_connection) {
    // Handshake, once per connection: Hello -> HelloAck. Confirms liveness,
    // protocol version (the frame header carries it), and the party's role
    // before the real request.
    if (!send_msg(MsgType::kHello, Hello{cfg_.client_id}.encode())) {
      fail(FetchStatus::kConnectError, "hello send failed");
      f.connect_s += lap();
      return f;
    }
    if (!read_msg(frame)) {
      f.connect_s += lap();
      return f;
    }
    HelloAck ack;
    if (frame.type != MsgType::kHelloAck ||
        !HelloAck::decode(frame.payload, ack)) {
      fail(FetchStatus::kProtocolError, "bad hello ack");
      f.connect_s += lap();
      return f;
    }
    // A generation the mirror doesn't know means the party restarted since
    // the baseline was taken: the server-side delta state died with it, so
    // drop ours and bootstrap with a full fetch. Not an error — the round
    // proceeds normally.
    if (link.count.cursor != 0 && ack.generation != link.count.generation) {
      link.count = {};
    }
    if (link.distinct.cursor != 0 &&
        ack.generation != link.distinct.generation) {
      link.distinct = {};
    }
    link.ack = ack;
  }
  const HelloAck& ack = link.ack;
  // Report the generation only once this attempt has live evidence of it: a
  // fresh handshake, or (on a reused link) any reply — a surviving
  // connection proves the process behind it survived. A reused socket that
  // dies before answering says nothing about the party's epoch, and must
  // not trip the cross-attempt restart guard in fetch() when the reconnect
  // finds a legitimately new generation.
  if (!f.reused_connection) f.generation = ack.generation;
  if (ack.role != role) {
    fail(FetchStatus::kRemoteError,
         std::string("party serves role ") + role_name(ack.role) +
             ", wanted " + role_name(role));
    return f;
  }
  const auto expected =
      static_cast<std::uint64_t>(std::max(cfg_.expected_instances, 0));
  if (expected > 0 && ack.instances != expected) {
    fail(FetchStatus::kProtocolError,
         "party runs " + std::to_string(ack.instances) +
             " instances, wanted " + std::to_string(expected));
    f.connect_s += lap();
    return f;
  }
  f.connect_s += lap();

  SnapshotRequest req;
  req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  req.role = role;
  req.n = n;
  const bool wants_delta =
      cfg_.delta_snapshots &&
      (role == PartyRole::kCount || role == PartyRole::kDistinct);
  if (wants_delta) {
    req.delta_capable = true;
    req.since_cursor = role == PartyRole::kCount ? link.count.cursor
                                                 : link.distinct.cursor;
  }
  // Trace context rides the request (extension tag 2): the party's
  // server-side spans join this fetch's trace.
  req.trace_id = ctx.trace_id;
  req.parent_span_id = ctx.parent_span_id;
  link.request_scratch.clear();
  req.encode_into(link.request_scratch);
  if (!send_msg(MsgType::kSnapshotRequest, link.request_scratch)) {
    fail(FetchStatus::kConnectError, "request send failed");
    f.send_s += lap();
    return f;
  }
  f.send_s += lap();
  if (!read_msg(frame)) {
    f.wait_s += lap();
    return f;
  }
  f.wait_s += lap();
  f.generation = ack.generation;

  if (frame.type == MsgType::kErr) {
    // A clean Err frame leaves the stream at a frame boundary; keep the
    // connection for whatever the caller tries next. kShutdown is not a
    // remote fault: the party is draining for a restart, so classify it
    // fast-retryable — but drop the socket, since the draining process
    // won't serve this link again.
    ErrReply err;
    if (ErrReply::decode(frame.payload, err)) {
      if (err.code == ErrCode::kShutdown) {
        f.status = FetchStatus::kShuttingDown;
        f.error = "party draining: " + err.message;
        link.sock.close();
      } else {
        f.status = FetchStatus::kRemoteError;
        f.error = "party error: " + err.message;
      }
    } else {
      f.status = FetchStatus::kRemoteError;
      f.error = "party error (undecodable)";
    }
    f.decode_s += lap();
    return f;
  }
  const bool is_delta_reply =
      wants_delta && frame.type == MsgType::kDeltaReply;
  if (frame.type != reply_type_for(role) && !is_delta_reply) {
    fail(FetchStatus::kProtocolError, "unexpected reply type");
    f.decode_s += lap();
    return f;
  }

  // A reply stamped with a different epoch than the handshake means the
  // party restarted between the two frames; its snapshot is stale.
  auto stale = [&](std::uint64_t reply_gen) {
    if (reply_gen == ack.generation) return false;
    const std::string msg = "party generation moved mid-request (" +
                            std::to_string(ack.generation) + " -> " +
                            std::to_string(reply_gen) + ")";
    fail(FetchStatus::kStaleGeneration, msg);
    f.generation = reply_gen;
    return true;
  };

  if (is_delta_reply) {
    // Per-link scratch reply: decode assigns the body in place, reusing
    // its capacity across rounds.
    DeltaReply& r = link.delta_scratch;
    if (!DeltaReply::decode(frame.payload, r) ||
        r.request_id != req.request_id || r.role != role) {
      fail(FetchStatus::kProtocolError, "bad delta reply");
      f.decode_s += lap();
      return f;
    }
    if (stale(r.generation)) {
      f.decode_s += lap();
      return f;
    }
    f.delta_reply = true;
    f.decode_s += lap();
    std::string err;
    bool ok = false;
    std::size_t got = 0;
    if (role == PartyRole::kCount) {
      ok = apply_delta_reply(r, req.since_cursor, ack.generation, n,
                             link.count, f.count_snapshots, f, err,
                             [&](const core::RandWaveCheckpoint& ck,
                                 core::RandWaveSnapshot& snap) {
                               core::snapshot_from_checkpoint_into(ck, n,
                                                                   snap);
                             });
      got = f.count_snapshots.size();
    } else {
      ok = apply_delta_reply(r, req.since_cursor, ack.generation, n,
                             link.distinct, f.distinct_snapshots, f, err,
                             [&](const core::DistinctWaveCheckpoint& ck,
                                 core::DistinctSnapshot& snap) {
                               core::snapshot_from_checkpoint_into(
                                   ck, n, ack.window, snap);
                             });
      got = f.distinct_snapshots.size();
    }
    if (!ok) {
      fail(FetchStatus::kProtocolError, std::move(err));
      f.apply_s += lap();
      return f;
    }
    if (expected > 0 && got != expected) {
      fail(FetchStatus::kProtocolError,
           "delta reply carries " + std::to_string(got) +
               " instances, wanted " + std::to_string(expected));
      f.apply_s += lap();
      return f;
    }
    f.status = FetchStatus::kOk;
    f.apply_s += lap();
    return f;
  }

  switch (role) {
    case PartyRole::kCount: {
      CountReply r;
      if (!CountReply::decode(frame.payload, r) ||
          r.request_id != req.request_id) {
        fail(FetchStatus::kProtocolError, "bad count reply");
        return f;
      }
      if (stale(r.generation)) return f;
      if (expected > 0 && r.snapshots.size() != expected) {
        fail(FetchStatus::kProtocolError,
             "count reply has " + std::to_string(r.snapshots.size()) +
                 " snapshots, wanted " + std::to_string(expected));
        return f;
      }
      f.count_snapshots = std::move(r.snapshots);
      break;
    }
    case PartyRole::kDistinct: {
      DistinctReply r;
      if (!DistinctReply::decode(frame.payload, r) ||
          r.request_id != req.request_id) {
        fail(FetchStatus::kProtocolError, "bad distinct reply");
        return f;
      }
      if (stale(r.generation)) return f;
      if (expected > 0 && r.snapshots.size() != expected) {
        fail(FetchStatus::kProtocolError,
             "distinct reply has " + std::to_string(r.snapshots.size()) +
                 " snapshots, wanted " + std::to_string(expected));
        return f;
      }
      f.distinct_snapshots = std::move(r.snapshots);
      break;
    }
    case PartyRole::kBasic:
    case PartyRole::kSum: {
      TotalReply r;
      if (!TotalReply::decode(frame.payload, r) ||
          r.request_id != req.request_id) {
        fail(FetchStatus::kProtocolError, "bad total reply");
        return f;
      }
      if (stale(r.generation)) return f;
      f.total = r;
      break;
    }
    case PartyRole::kAgg: {
      AggReply r;
      if (!AggReply::decode(frame.payload, r) ||
          r.request_id != req.request_id) {
        fail(FetchStatus::kProtocolError, "bad agg reply");
        return f;
      }
      if (stale(r.generation)) return f;
      f.agg = r;
      break;
    }
  }
  f.status = FetchStatus::kOk;
  f.decode_s += lap();
  return f;
}

bool RefereeClient::breaker_admit(std::size_t party, bool& is_probe,
                                  Fetch& fast) const {
  Breaker& br = *breakers_[party];
  std::lock_guard lk(br.mu);
  if (!br.open) return true;
  if (!br.probing &&
      Clock::now() - br.opened_at >= cfg_.breaker_cooldown) {
    // Half-open: admit exactly one trial fetch; everyone else keeps
    // failing fast until it reports back.
    br.probing = true;
    is_probe = true;
    return true;
  }
  fast.status = br.last_status;
  fast.error = "circuit open: " + br.last_error;
  return false;
}

void RefereeClient::breaker_note(std::size_t party, const Fetch& f) const {
  const auto& obs = obs::NetClientObs::instance();
  Breaker& br = *breakers_[party];
  std::lock_guard lk(br.mu);
  if (f.ok()) {
    if (br.open) obs.breaker_closes.add();
    br.open = false;
    br.probing = false;
    br.failures = 0;
    return;
  }
  br.last_status = f.status;
  br.last_error = f.error;
  if (br.open) {
    // A failed half-open probe (or a straggler that was admitted before
    // the trip): stay open and restart the cooldown.
    br.probing = false;
    br.opened_at = Clock::now();
    return;
  }
  if (++br.failures >= cfg_.breaker_threshold) {
    br.open = true;
    br.probing = false;
    br.opened_at = Clock::now();
    obs.breaker_trips.add();
  }
}

Fetch RefereeClient::fetch(std::size_t party, PartyRole role, std::uint64_t n,
                           obs::TraceContext ctx) const {
  const auto& obs = obs::NetClientObs::instance();
  obs.requests.add();
  const auto t0 = Clock::now();
  // One span per fetch: child of the caller's context (the fan-out span)
  // when given one, else of the ambient trace, else a fresh root. The
  // party's server-side spans parent under this one via the request's
  // trace extension.
  auto span = ctx ? obs::Tracer::instance().start("net.fetch", ctx)
                  : obs::Tracer::instance().start_auto("net.fetch");
  span.set("party", static_cast<double>(party));
  // Allocation delta across the whole fetch — nonzero only in binaries
  // that install tools/alloc_hook.hpp.
  const obs::AllocScope alloc_scope;

  // Circuit-breaker admission: an open endpoint fails fast with the status
  // kind that tripped it (the caller's quorum math sees the same failure,
  // just immediately) instead of paying the connect/retry budget. After the
  // cooldown exactly one probe fetch is admitted through.
  if (cfg_.breaker_enabled) {
    bool is_probe = false;
    Fetch fast;
    if (!breaker_admit(party, is_probe, fast)) {
      obs.breaker_fast_fails.add();
      fast.trace_id = span.trace_id();
      fast.total_s = std::chrono::duration<double>(Clock::now() - t0).count();
      obs.request_seconds.observe(fast.total_s);
      span.set("ok", 0.0);
      span.set("breaker_open", 1.0);
      return fast;
    }
    if (is_probe) obs.breaker_probes.add();
  }

  Fetch result;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  int attempts = 0;
  // Phase durations accumulate across attempts, like the byte counters:
  // the record describes the fetch, not just its final attempt.
  double connect_s = 0.0;
  double send_s = 0.0;
  double wait_s = 0.0;
  double decode_s = 0.0;
  double apply_s = 0.0;
  double backoff_s = 0.0;
  // Generation seen on the first attempt that completed a handshake. A
  // later attempt answering under a different epoch means the party
  // restarted mid-fetch — its recovered state replayed the feed
  // independently, so its snapshot is treated as stale rather than merged.
  std::uint64_t first_generation = 0;
  bool saw_generation = false;
  // Total budget: when set, it is a hard wall-clock ceiling on the whole
  // fetch — backoff sleeps are clamped to what remains, no attempt starts
  // past it, and every attempt's I/O deadline is capped at it.
  const bool budgeted = cfg_.total_deadline.count() > 0;
  const Deadline budget_dl =
      budgeted ? deadline_in(cfg_.total_deadline) : Deadline::max();
  // Doubling with saturation, not a shift: --attempts is user-settable and
  // a shift exponent past 30 is UB.
  auto backoff = std::min(cfg_.backoff_base, cfg_.backoff_max);
  for (int a = 1; a <= cfg_.max_attempts; ++a) {
    if (a > 1) {
      obs.retries.add();
      if (budgeted && Clock::now() >= budget_dl) {
        obs.deadline_exhausted.add();
        break;  // keep the last attempt's failure status
      }
      if (result.status == FetchStatus::kShuttingDown) {
        // Fast retry: the party said it is draining, so the replacement
        // process may already be listening — don't burn backoff on it, and
        // don't let the drain inflate later backoffs.
        obs.shutdown_retries.add();
      } else {
        auto sleep_for = backoff;
        if (budgeted) {
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  budget_dl - Clock::now());
          sleep_for = std::min(sleep_for, remaining);
        }
        const auto sleep_t0 = Clock::now();
        if (sleep_for.count() > 0) std::this_thread::sleep_for(sleep_for);
        backoff_s +=
            std::chrono::duration<double>(Clock::now() - sleep_t0).count();
        backoff = std::min(backoff * 2, cfg_.backoff_max);
      }
    }
    obs.attempts.add();
    attempts = a;
    result = attempt(party, role, n, span.context(), budget_dl);
    sent += result.bytes_sent;
    received += result.bytes_received;
    connect_s += result.connect_s;
    send_s += result.send_s;
    wait_s += result.wait_s;
    decode_s += result.decode_s;
    apply_s += result.apply_s;
    if (result.generation != 0 || result.status == FetchStatus::kOk) {
      if (saw_generation && result.generation != first_generation) {
        result.status = FetchStatus::kStaleGeneration;
        result.error = "party restarted between attempts (generation " +
                       std::to_string(first_generation) + " -> " +
                       std::to_string(result.generation) + ")";
        break;
      }
      if (!saw_generation) {
        first_generation = result.generation;
        saw_generation = true;
      }
    }
    if (result.status == FetchStatus::kTimeout) {
      obs.timeouts.add();
      continue;  // retryable
    }
    if (result.status == FetchStatus::kConnectError) {
      obs.connect_errors.add();
      continue;  // retryable
    }
    if (result.status == FetchStatus::kShuttingDown) {
      continue;  // fast-retryable (counted at the top of the next lap)
    }
    break;  // kOk, kRemoteError, kProtocolError, kStaleGeneration: terminal
  }
  if (result.status == FetchStatus::kProtocolError) obs.protocol_errors.add();
  if (result.status == FetchStatus::kStaleGeneration) {
    obs::RecoveryObs::instance().generation_mismatches.add();
  }
  if (cfg_.breaker_enabled) breaker_note(party, result);

  result.attempts = attempts;
  result.bytes_sent = sent;
  result.bytes_received = received;
  result.trace_id = span.trace_id();
  result.allocs = alloc_scope.allocs();
  result.connect_s = connect_s;
  result.send_s = send_s;
  result.wait_s = wait_s;
  result.decode_s = decode_s;
  result.apply_s = apply_s;
  result.backoff_s = backoff_s;
  result.total_s = std::chrono::duration<double>(Clock::now() - t0).count();
  obs.bytes_sent.add(sent);
  obs.bytes_received.add(received);
  obs.request_seconds.observe(result.total_s);
  span.set("ok", result.ok() ? 1.0 : 0.0);
  span.set("attempts", static_cast<double>(attempts));
  span.set("bytes_received", static_cast<double>(received));

  obs::FlightRecord rec;
  rec.trace_id = result.trace_id;
  rec.party = static_cast<std::uint32_t>(party);
  rec.role = role_name(role);
  rec.ok = result.ok();
  rec.attempts = static_cast<std::uint32_t>(attempts);
  rec.bytes = received;
  rec.allocs = result.allocs;
  rec.reused_connection = result.reused_connection;
  rec.delta_reply = result.delta_reply;
  rec.delta_applied = result.delta_applied;
  rec.cache_hit = result.cache_hit;
  rec.connect_s = connect_s;
  rec.send_s = send_s;
  rec.wait_s = wait_s;
  rec.decode_s = decode_s;
  rec.apply_s = apply_s;
  rec.backoff_s = backoff_s;
  rec.total_s = result.total_s;
  obs::FlightRecorder::instance().record(std::move(rec));
  return result;
}

std::vector<Fetch> RefereeClient::fetch_all(PartyRole role,
                                            std::uint64_t n) const {
  // Joins the calling thread's ambient trace (the referee round installs
  // one via obs::TraceScope) or roots a fresh one. The per-party fetch
  // threads have no ambient context of their own, so the fan-out span's
  // context rides into them explicitly.
  auto span = obs::Tracer::instance().start_auto("net.fanout");
  const obs::TraceContext fan_ctx = span.context();
  if (fan_ctx) {
    last_trace_id_.store(fan_ctx.trace_id, std::memory_order_relaxed);
  }
  std::vector<Fetch> results(parties_.size());
  {
    std::vector<std::jthread> threads;
    threads.reserve(parties_.size());
    for (std::size_t i = 0; i < parties_.size(); ++i) {
      threads.emplace_back([this, &results, i, role, n, fan_ctx] {
        results[i] = fetch(i, role, n, fan_ctx);
      });
    }
  }  // join
  std::size_t ok = 0;
  std::uint64_t bytes = 0;
  for (const Fetch& f : results) {
    if (f.ok()) ++ok;
    bytes += f.bytes_received;
  }
  span.set("parties", static_cast<double>(parties_.size()));
  span.set("ok", static_cast<double>(ok));
  span.set("bytes_received", static_cast<double>(bytes));
  return results;
}

NetworkCountSource::NetworkCountSource(std::vector<Endpoint> parties,
                                       const core::RandWave::Params& params,
                                       int instances,
                                       std::uint64_t shared_seed,
                                       ClientConfig cfg)
    : client_(std::move(parties), with_instances(cfg, instances)),
      reference_(params, instances, shared_seed) {}

std::size_t NetworkCountSource::party_count() const {
  return client_.party_count();
}

int NetworkCountSource::instances() const { return reference_.instances(); }

const gf2::ExpHash& NetworkCountSource::hash(int instance) const {
  return reference_.instance(instance).hash();
}

std::vector<std::vector<core::RandWaveSnapshot>> NetworkCountSource::collect(
    std::uint64_t n, std::vector<std::size_t>& missing,
    distributed::WireStats* stats, distributed::CollectStats& info) {
  std::vector<Fetch> fetches = client_.fetch_all(PartyRole::kCount, n);
  std::vector<std::vector<core::RandWaveSnapshot>> by_party(fetches.size());
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    Fetch& f = fetches[i];
    info.bytes += f.bytes_received;
    if (!f.ok()) {
      if (f.status == FetchStatus::kProtocolError) ++info.decode_failures;
      missing.push_back(i);
      continue;
    }
    // combine_median indexes every party's vector at [0, instances);
    // a short reply must land in `missing`, never out-of-bounds there.
    if (f.count_snapshots.size() !=
        static_cast<std::size_t>(instances())) {
      ++info.decode_failures;
      missing.push_back(i);
      continue;
    }
    info.messages += f.count_snapshots.size();
    if (stats != nullptr) {
      stats->add(f.bytes_received,
                 static_cast<double>(f.bytes_received) * 8.0);
    }
    by_party[i] = std::move(f.count_snapshots);
  }
  return by_party;
}

NetworkDistinctSource::NetworkDistinctSource(
    std::vector<Endpoint> parties, const core::DistinctWave::Params& params,
    int instances, std::uint64_t shared_seed, ClientConfig cfg)
    : client_(std::move(parties), with_instances(cfg, instances)),
      reference_(params, instances, shared_seed) {}

std::size_t NetworkDistinctSource::party_count() const {
  return client_.party_count();
}

int NetworkDistinctSource::instances() const {
  return reference_.instances();
}

const gf2::ExpHash& NetworkDistinctSource::hash(int instance) const {
  return reference_.instance(instance).hash();
}

std::vector<std::vector<core::DistinctSnapshot>>
NetworkDistinctSource::collect(std::uint64_t n,
                               std::vector<std::size_t>& missing,
                               distributed::WireStats* stats,
                               distributed::CollectStats& info) {
  std::vector<Fetch> fetches = client_.fetch_all(PartyRole::kDistinct, n);
  std::vector<std::vector<core::DistinctSnapshot>> by_party(fetches.size());
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    Fetch& f = fetches[i];
    info.bytes += f.bytes_received;
    if (!f.ok()) {
      if (f.status == FetchStatus::kProtocolError) ++info.decode_failures;
      missing.push_back(i);
      continue;
    }
    if (f.distinct_snapshots.size() !=
        static_cast<std::size_t>(instances())) {
      ++info.decode_failures;
      missing.push_back(i);
      continue;
    }
    info.messages += f.distinct_snapshots.size();
    if (stats != nullptr) {
      stats->add(f.bytes_received,
                 static_cast<double>(f.bytes_received) * 8.0);
    }
    by_party[i] = std::move(f.distinct_snapshots);
  }
  return by_party;
}

distributed::QueryResult total_query(const RefereeClient& client,
                                     PartyRole role, std::uint64_t n,
                                     std::uint64_t max_value) {
  auto span = obs::Tracer::instance().start(
      role == PartyRole::kSum ? "referee.total_sum_tcp"
                              : "referee.total_count_tcp");
  distributed::QueryResult r;
  if (client.party_count() == 0) {
    r.error = "total query: no parties configured";
    return r;
  }

  std::vector<Fetch> fetches = client.fetch_all(role, n);

  double sum = 0.0;
  bool all_exact = true;
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    const Fetch& f = fetches[i];
    if (!f.ok()) {
      r.missing.push_back(i);
      if (r.error.empty()) r.error = f.error;
      continue;
    }
    sum += f.total.value;
    all_exact = all_exact && f.total.exact;
  }
  span.set("parties", static_cast<double>(client.party_count()));
  span.set("missing", static_cast<double>(r.missing.size()));

  if (r.missing.size() == fetches.size()) {
    r.status = distributed::QueryStatus::kFailed;
    r.error = "total query: no party answered (" + r.error + ")";
    return r;
  }
  r.estimate = core::Estimate{sum, all_exact && r.missing.empty(), n};
  if (r.missing.empty()) {
    r.status = distributed::QueryStatus::kOk;
    r.error.clear();
  } else {
    // Each unreachable party could hold up to n items of value at most
    // max_value in its window — the answer interval widens by that much.
    r.status = distributed::QueryStatus::kDegraded;
    r.error_slack = static_cast<double>(r.missing.size()) *
                    static_cast<double>(n) * static_cast<double>(max_value);
  }
  return r;
}

AggQueryResult agg_query(const RefereeClient& client, agg::AggOp op,
                         std::uint64_t n, std::uint64_t max_abs_value) {
  auto span = obs::Tracer::instance().start("referee.agg_tcp");
  AggQueryResult r;
  r.op = op;
  if (client.party_count() == 0) {
    r.error = "agg query: no parties configured";
    return r;
  }

  std::vector<Fetch> fetches = client.fetch_all(PartyRole::kAgg, n);

  // Combine exactly the way one AggWave would: SUM wraps mod 2^64, MIN/MAX
  // fold from the op identity.
  std::uint64_t sum = 0;
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  std::size_t answered = 0;
  for (std::size_t i = 0; i < fetches.size(); ++i) {
    const Fetch& f = fetches[i];
    if (!f.ok() || f.agg.op != op) {
      r.missing.push_back(i);
      if (r.error.empty()) {
        r.error = f.ok() ? std::string("party echoed op ") +
                               agg::agg_op_name(f.agg.op) + ", wanted " +
                               agg::agg_op_name(op)
                         : f.error;
      }
      continue;
    }
    ++answered;
    sum += static_cast<std::uint64_t>(f.agg.value);
    lo = std::min(lo, f.agg.value);
    hi = std::max(hi, f.agg.value);
  }
  span.set("parties", static_cast<double>(client.party_count()));
  span.set("missing", static_cast<double>(r.missing.size()));

  if (answered == 0) {
    r.status = distributed::QueryStatus::kFailed;
    r.error = "agg query: no party answered (" + r.error + ")";
    return r;
  }
  switch (op) {
    case agg::AggOp::kSum:
      r.value = static_cast<std::int64_t>(sum);
      break;
    case agg::AggOp::kMin:
      r.value = lo;
      break;
    case agg::AggOp::kMax:
      r.value = hi;
      break;
  }
  if (r.missing.empty()) {
    r.status = distributed::QueryStatus::kOk;
    r.error.clear();
  } else {
    r.status = distributed::QueryStatus::kDegraded;
    if (op == agg::AggOp::kSum) {
      r.error_slack = static_cast<double>(r.missing.size()) *
                      static_cast<double>(n) *
                      static_cast<double>(max_abs_value);
    }
  }
  return r;
}

bool scrape_metrics(const Endpoint& ep, MetricsFormat format,
                    std::uint64_t trace_filter,
                    std::chrono::milliseconds deadline, MetricsReply& out,
                    std::string& error) {
  const Deadline dl = deadline_in(deadline);
  bool connect_timed_out = false;
  Socket sock = tcp_connect(ep.host, ep.port, dl, &connect_timed_out);
  if (!sock.valid()) {
    error = (connect_timed_out ? "connect timeout: " : "connect failed: ") +
            ep.host + ":" + std::to_string(ep.port);
    return false;
  }
  MetricsRequest req;
  req.request_id = 1;
  req.format = format;
  req.trace_filter = trace_filter;
  if (!write_frame(sock, MsgType::kMetricsRequest, req.encode(), dl)) {
    error = "metrics request send failed";
    return false;
  }
  Frame frame;
  switch (read_frame(sock, frame, dl)) {
    case ReadStatus::kOk:
      break;
    case ReadStatus::kTimeout:
      error = "metrics reply deadline exceeded";
      return false;
    case ReadStatus::kClosed:
      error = "connection closed before metrics reply";
      return false;
    case ReadStatus::kMalformed:
      error = "malformed metrics reply frame";
      return false;
  }
  if (frame.type == MsgType::kErr) {
    ErrReply err;
    error = ErrReply::decode(frame.payload, err)
                ? "party error: " + err.message
                : "party error (undecodable)";
    return false;
  }
  if (frame.type != MsgType::kMetricsReply) {
    error = "unexpected reply type to metrics request";
    return false;
  }
  MetricsReply r;
  if (!MetricsReply::decode(frame.payload, r) || r.request_id != req.request_id ||
      r.format != format) {
    error = "bad metrics reply";
    return false;
  }
  out = std::move(r);
  return true;
}

bool probe_health(const Endpoint& ep, std::chrono::milliseconds deadline,
                  HealthReply& out, std::string& error) {
  const auto& obs = obs::SuperviseObs::instance();
  obs.probes.add();
  const Deadline dl = deadline_in(deadline);
  // Fail-closed mirror of scrape_metrics: anything but a well-formed
  // kHealthReply echoing our request id is a failed probe, and a failed
  // probe is indistinguishable from a dead party on purpose — the
  // supervisor restarts on either.
  auto failed = [&](std::string msg) {
    obs.probe_failures.add();
    error = std::move(msg);
    return false;
  };
  bool connect_timed_out = false;
  Socket sock = tcp_connect(ep.host, ep.port, dl, &connect_timed_out);
  if (!sock.valid()) {
    return failed((connect_timed_out ? "connect timeout: "
                                     : "connect failed: ") +
                  ep.host + ":" + std::to_string(ep.port));
  }
  HealthRequest req;
  req.request_id = 1;
  if (!write_frame(sock, MsgType::kHealthRequest, req.encode(), dl)) {
    return failed("health request send failed");
  }
  Frame frame;
  switch (read_frame(sock, frame, dl)) {
    case ReadStatus::kOk:
      break;
    case ReadStatus::kTimeout:
      return failed("health reply deadline exceeded");
    case ReadStatus::kClosed:
      return failed("connection closed before health reply");
    case ReadStatus::kMalformed:
      return failed("malformed health reply frame");
  }
  if (frame.type == MsgType::kErr) {
    ErrReply err;
    return failed(ErrReply::decode(frame.payload, err)
                      ? "party error: " + err.message
                      : "party error (undecodable)");
  }
  if (frame.type != MsgType::kHealthReply) {
    return failed("unexpected reply type to health request");
  }
  HealthReply r;
  if (!HealthReply::decode(frame.payload, r) ||
      r.request_id != req.request_id) {
    return failed("bad health reply");
  }
  out = r;
  return true;
}

}  // namespace waves::net
