// The referee side of the TCP transport.
//
// RefereeClient talks to a fixed set of party endpoints over persistent
// keep-alive connections: the first fetch to a party connects and
// handshakes (Hello -> HelloAck); later fetches reuse the socket and skip
// the handshake. Any socket or protocol failure drops the link — the next
// attempt reconnects (counted in waves_net_reconnects_total) — and a
// per-request deadline plus bounded exponential backoff still bound every
// round. Retries happen only on timeouts and connect failures; a party
// that *answers* with an error or garbage is terminal for the round
// (retrying can't fix a wrong-role or protocol bug). Fan-out is one thread
// per party, so a round costs max-latency, not sum.
//
// Fast query path (count/distinct roles, ClientConfig::delta_snapshots):
// the client mirrors each party's last checkpoint and asks for protocol-v3
// delta replies against it, so steady-state rounds transfer the *edit*
// since the previous round instead of the full synopsis. Decoded
// per-instance snapshots are cached keyed (party generation, cursor, n);
// an "unchanged" reply is a cache hit that decodes nothing. A generation
// bump at handshake (the party restarted) silently drops the mirror and
// bootstraps with a full fetch; a server with delta disabled just answers
// v2 full replies and everything still works.
//
// NetworkCountSource / NetworkDistinctSource adapt the client to the
// referee's SnapshotSource interface: the snapshot bytes come off the
// network while the shared hashes are re-derived locally from the
// deployment seed (stored coins — the parties and the referee flipped them
// together at setup, Sec. 2). total_query() covers Scenario 1, where
// partial quorum degrades instead of failing: responders' totals still sum,
// and the missing parties' unknown contribution is bounded by
// missing * n * max_value and reported as error_slack.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"
#include "distributed/party.hpp"
#include "distributed/referee.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"

namespace waves::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" (IPv4 literal). False on malformed input.
[[nodiscard]] bool parse_endpoint(const std::string& s, Endpoint& out);

struct ClientConfig {
  std::chrono::milliseconds request_deadline{1000};  // per attempt
  int max_attempts = 3;
  std::chrono::milliseconds backoff_base{25};
  std::chrono::milliseconds backoff_max{400};
  std::uint64_t client_id = 0;
  // When > 0, a party whose HelloAck or snapshot reply carries a different
  // instance count is a protocol error: combine_median indexes every
  // party's vector at [0, instances), so a short reply that decoded fine
  // (e.g. a daemon launched with a different --instances) must fail typed
  // here, not out-of-bounds there. Totals (Scenario 1) leave this at 0.
  int expected_instances = 0;
  // Request v3 delta snapshots for count/distinct fetches and maintain the
  // per-party mirror they apply to. Off, every fetch is a v2 full snapshot
  // (the --delta off / differential-test configuration).
  bool delta_snapshots = true;
  // Hard wall-clock ceiling on one logical fetch: attempts plus backoff
  // sleeps never exceed it. Backoffs are clamped to the remaining budget
  // and no new attempt starts once it is spent (the fetch keeps its last
  // failure status, counted in waves_net_deadline_exhausted_total). Zero
  // disables the ceiling — the legacy max_attempts * request_deadline +
  // backoff bound applies.
  std::chrono::milliseconds total_deadline{0};
  // Per-endpoint circuit breaker: `breaker_threshold` consecutive failed
  // fetches trip it open, an open endpoint fails fast (no connect, no
  // retries — the fetch returns the status kind that tripped it, so the
  // caller's quorum/error-slack math is unchanged, just immediate), and
  // after `breaker_cooldown` one half-open probe fetch is admitted: success
  // closes the breaker, failure re-opens it for another cooldown. States
  // and transitions are counted in the waves_net_breaker_* families.
  bool breaker_enabled = true;
  int breaker_threshold = 5;
  std::chrono::milliseconds breaker_cooldown{1000};
};

enum class FetchStatus {
  kOk,
  kTimeout,        // every attempt hit the deadline
  kConnectError,   // every attempt failed to connect
  kRemoteError,    // party answered with an Err message (terminal)
  kProtocolError,  // malformed/unexpected reply (terminal)
  // Party answered ErrCode::kShutdown: it is draining for a restart, not
  // broken. Fast-retryable (no backoff growth — the next attempt may land
  // on the recovered process) and counted separately in
  // waves_net_shutdown_retries_total, so rolling restarts don't read as
  // hard protocol errors.
  kShuttingDown,
  // The party's generation changed mid-fetch (it restarted between
  // attempts, or between handshake and reply). Its answer describes a
  // recovered replay state the round didn't ask about — stale, terminal,
  // counted in waves_recovery_generation_mismatch_total. The caller's
  // quorum rules apply: totals degrade with error_slack, union/distinct
  // fail closed.
  kStaleGeneration,
};

/// Outcome of one party fetch (after retries).
struct Fetch {
  FetchStatus status = FetchStatus::kConnectError;
  int attempts = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  // Party epoch from the last HelloAck seen (0 if none arrived).
  std::uint64_t generation = 0;
  // How the fetch was served — the knobs E18 and the delta tests assert on.
  bool reused_connection = false;  // keep-alive socket, no new handshake
  bool delta_reply = false;        // server answered under the v3 framing
  bool delta_applied = false;      // body was a diff applied to the mirror
  bool cache_hit = false;          // snapshots came from the decoded cache
  std::string error;

  // Flight-recorder facts: the trace this fetch joined, allocations during
  // it (0 unless the binary installs tools/alloc_hook.hpp), and disjoint
  // per-phase wall-clock durations summed across attempts. total_s is
  // measured independently around the whole fetch; the phase sum tracks it
  // to within the untimed bookkeeping between phases.
  std::uint64_t trace_id = 0;
  std::uint64_t allocs = 0;
  double connect_s = 0.0;  // TCP connect + Hello/HelloAck handshake
  double send_s = 0.0;     // request encode + write
  double wait_s = 0.0;     // blocked on the reply frame (server + wire)
  double decode_s = 0.0;   // reply payload -> structs
  double apply_s = 0.0;    // delta apply + snapshot materialization
  double backoff_s = 0.0;  // retry sleeps
  double total_s = 0.0;

  // Exactly one of these is meaningful, per the request type.
  std::vector<core::RandWaveSnapshot> count_snapshots;
  std::vector<core::DistinctSnapshot> distinct_snapshots;
  TotalReply total;
  AggReply agg;

  [[nodiscard]] bool ok() const noexcept { return status == FetchStatus::kOk; }
};

/// Client-side delta state for one party and one checkpoint flavor: the
/// mirrored baseline the server diffs against, plus the decoded snapshots
/// derived from it, cached under the (cursor, n) they were built for. The
/// owning PartyLink's generation handling invalidates both on restart.
template <class Checkpoint, class Snapshot>
struct DeltaMirror {
  std::uint64_t cursor = 0;      // server cursor of `base`; 0 = no baseline
  std::uint64_t generation = 0;  // party epoch the mirror belongs to
  Checkpoint base;
  // apply_delta_into destination, ping-ponged with `base` via swap so the
  // retired baseline's vectors become next round's capacity.
  Checkpoint scratch;
  bool cache_valid = false;
  std::uint64_t cache_cursor = 0;
  std::uint64_t cache_n = 0;
  std::vector<Snapshot> cache;
};

class RefereeClient {
 public:
  explicit RefereeClient(std::vector<Endpoint> parties,
                         ClientConfig cfg = {});

  [[nodiscard]] std::size_t party_count() const noexcept {
    return parties_.size();
  }
  [[nodiscard]] const Endpoint& endpoint(std::size_t i) const {
    return parties_[i];
  }
  [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }

  /// Fetch from one party, synchronously, with retries. `ctx` (optional)
  /// joins the fetch — and, via the request's trace extension, the party's
  /// server-side spans — to an existing trace.
  [[nodiscard]] Fetch fetch(std::size_t party, PartyRole role, std::uint64_t n,
                            obs::TraceContext ctx = {}) const;

  /// Fan out one request per party concurrently; returns per-party results
  /// in endpoint order. Wall time is the slowest party's, bounded by
  /// max_attempts * request_deadline + backoff. The fan-out span joins the
  /// calling thread's ambient trace context (obs::TraceScope) when one is
  /// installed, else roots a fresh trace; read it back via last_trace_id().
  [[nodiscard]] std::vector<Fetch> fetch_all(PartyRole role,
                                             std::uint64_t n) const;

  /// Trace id of the most recent fetch_all round (0 before the first, or
  /// with WAVES_OBS=OFF). What `wavecli query --trace` scrapes parties for.
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    return last_trace_id_.load(std::memory_order_relaxed);
  }

  /// Drop every keep-alive socket (the next fetch per party reconnects).
  /// Mirrors and caches survive — they are invalidated by generation, not
  /// by connection lifetime.
  void disconnect_all() const;

 private:
  // One party's persistent connection plus its delta state. Fetches to the
  // same party serialize on `mu`; fan-out across parties stays parallel.
  struct PartyLink {
    std::mutex mu;
    Socket sock;  // invalid between connections
    bool ever_connected = false;
    HelloAck ack;  // handshake of the live connection
    DeltaMirror<distributed::CountPartyCheckpoint, core::RandWaveSnapshot>
        count;
    DeltaMirror<distributed::DistinctPartyCheckpoint, core::DistinctSnapshot>
        distinct;
    // Round-to-round scratch, all guarded by `mu`: the reply frame, the
    // encoded request, and the decoded delta reply keep their high-water
    // capacities so a steady-state keep-alive fetch allocates almost
    // nothing on the transport path (E18).
    Frame frame;
    Bytes request_scratch;
    DeltaReply delta_scratch;
  };

  // Per-endpoint circuit breaker (see ClientConfig). Separate from
  // PartyLink so the open-state fast path never touches the link mutex a
  // stalled attempt may hold.
  struct Breaker {
    std::mutex mu;
    int failures = 0;  // consecutive failed fetches while closed
    bool open = false;
    bool probing = false;  // one half-open trial fetch is in flight
    Clock::time_point opened_at{};
    FetchStatus last_status = FetchStatus::kConnectError;
    std::string last_error;
  };

  // One connect/request/reply exchange. `cap` is the fetch's total-budget
  // deadline (Clock::time_point::max() when ClientConfig::total_deadline is
  // 0): every I/O deadline inside the attempt is clamped to it, so a
  // budgeted fetch can never overrun its caller's ceiling mid-attempt.
  [[nodiscard]] Fetch attempt(std::size_t party, PartyRole role,
                              std::uint64_t n, obs::TraceContext ctx,
                              Deadline cap) const;
  // Breaker admission for one fetch. True = proceed (is_probe set when this
  // fetch is the half-open trial); false = fail fast, `fast` filled with
  // the tripping failure's status kind.
  [[nodiscard]] bool breaker_admit(std::size_t party, bool& is_probe,
                                   Fetch& fast) const;
  // Report a finished fetch to the endpoint's breaker.
  void breaker_note(std::size_t party, const Fetch& f) const;

  std::vector<Endpoint> parties_;
  ClientConfig cfg_;
  // unique_ptr: PartyLink holds a mutex, and links must stay put while
  // fetch_all threads hold references.
  mutable std::vector<std::unique_ptr<PartyLink>> links_;
  mutable std::vector<std::unique_ptr<Breaker>> breakers_;
  mutable std::atomic<std::uint64_t> next_request_id_{1};
  mutable std::atomic<std::uint64_t> last_trace_id_{0};
};

/// Union-counting snapshot source over TCP. The hashes come from a local
/// never-fed reference party built from the same (params, instances, seed)
/// as the deployment — stored shared coins, not communication.
class NetworkCountSource final : public distributed::CountSnapshotSource {
 public:
  NetworkCountSource(std::vector<Endpoint> parties,
                     const core::RandWave::Params& params, int instances,
                     std::uint64_t shared_seed, ClientConfig cfg = {});

  [[nodiscard]] std::size_t party_count() const override;
  [[nodiscard]] int instances() const override;
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override;
  [[nodiscard]] const char* transport() const override { return "tcp"; }
  std::vector<std::vector<core::RandWaveSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing,
      distributed::WireStats* stats,
      distributed::CollectStats& info) override;

  [[nodiscard]] RefereeClient& client() noexcept { return client_; }

 private:
  RefereeClient client_;
  distributed::CountParty reference_;  // hash oracle; never observes items
};

class NetworkDistinctSource final
    : public distributed::DistinctSnapshotSource {
 public:
  NetworkDistinctSource(std::vector<Endpoint> parties,
                        const core::DistinctWave::Params& params,
                        int instances, std::uint64_t shared_seed,
                        ClientConfig cfg = {});

  [[nodiscard]] std::size_t party_count() const override;
  [[nodiscard]] int instances() const override;
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override;
  [[nodiscard]] const char* transport() const override { return "tcp"; }
  std::vector<std::vector<core::DistinctSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing,
      distributed::WireStats* stats,
      distributed::CollectStats& info) override;

  [[nodiscard]] RefereeClient& client() noexcept { return client_; }

 private:
  RefereeClient client_;
  distributed::DistinctParty reference_;
};

/// Scenario-1 total over the network: sums TotalReply values across
/// parties. Full quorum -> kOk. Partial quorum -> kDegraded with
/// error_slack = missing * n * max_value (pass max_value 1 for Basic
/// Counting) — the most the unreachable parties could add. No responders
/// -> kFailed.
[[nodiscard]] distributed::QueryResult total_query(
    const RefereeClient& client, PartyRole role, std::uint64_t n,
    std::uint64_t max_value = 1);

/// Distributed exact aggregate (agg role). Keeps the int64 exact instead of
/// round-tripping through QueryResult's double estimate: sums past 2^53
/// must not round on the referee hop when every party answered exactly.
struct AggQueryResult {
  distributed::QueryStatus status = distributed::QueryStatus::kFailed;
  agg::AggOp op = agg::AggOp::kSum;
  // SUM: responders' values summed (mod 2^64, like a single AggWave fed the
  // concatenation). MIN/MAX: min/max over responders — with parties missing
  // this is only an upper (resp. lower) bound on the true answer.
  std::int64_t value = 0;
  std::vector<std::size_t> missing;  // endpoint indices with no answer
  // SUM only: |true - value| <= missing * n * max_abs_value, the analogue
  // of total_query's slack. 0 for MIN/MAX (the bound is one-sided, not an
  // interval — see `value`).
  double error_slack = 0.0;
  std::string error;

  [[nodiscard]] bool ok() const noexcept {
    return status == distributed::QueryStatus::kOk;
  }
};

/// Same quorum rule as total_query: full quorum -> kOk, partial -> kDegraded
/// (responders still combine), none -> kFailed. A party echoing a different
/// op than requested is a protocol error and counts as missing.
[[nodiscard]] AggQueryResult agg_query(const RefereeClient& client,
                                       agg::AggOp op, std::uint64_t n,
                                       std::uint64_t max_abs_value = 1);

/// One-shot remote scrape of a daemon's obs registry (kMetricsRequest).
/// Standalone — no Hello handshake, no RefereeClient: connects, asks for
/// `format` (trace_filter applies to MetricsFormat::kTrace only), validates
/// the reply (type, echoed request id and format), and fails closed on
/// anything else: error frames, truncated/hostile payloads, timeouts.
/// False on failure with a diagnostic in `error`; `out` untouched.
[[nodiscard]] bool scrape_metrics(const Endpoint& ep, MetricsFormat format,
                                  std::uint64_t trace_filter,
                                  std::chrono::milliseconds deadline,
                                  MetricsReply& out, std::string& error);

/// One-shot liveness probe of a daemon (kHealthRequest). Standalone like
/// scrape_metrics — no Hello handshake, no RefereeClient — and fail-closed:
/// any error frame, hostile payload, or timeout is a failed probe (counted
/// in waves_supervise_probe_failures_total) with a diagnostic in `error`;
/// `out` untouched. The supervisor treats a failed probe exactly like a
/// dead process.
[[nodiscard]] bool probe_health(const Endpoint& ep,
                                std::chrono::milliseconds deadline,
                                HealthReply& out, std::string& error);

}  // namespace waves::net
