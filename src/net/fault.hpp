// Deterministic fault injection at the socket boundary.
//
// A FaultPlan is a seeded schedule of socket-level misbehavior — dropped
// sends, delays, truncations, bit corruption, connection resets — armed at
// runtime from the WAVES_FAULTS environment variable:
//
//   WAVES_FAULTS="seed=42,drop=0.1,delay=0.2:50,truncate=0.05,corrupt=0.05,reset=0.02"
//
// Each key is a probability in [0,1]; `delay` takes `prob:millis`. Every
// I/O event draws one 64-bit word from splitmix64(seed ^ event#) and tests
// the kinds in fixed priority order (reset > drop > truncate > corrupt >
// delay), so the full schedule is a pure function of the seed and the
// event sequence. Concurrent connections interleave event numbers
// nondeterministically — single-threaded tests get exact replay, and chaos
// scripts use probability 1.0 so every interleaving sees the same faults.
//
// Faults model a hostile network, not a hostile kernel: they fire before
// bytes reach the fd (send) or before the read begins (recv), and each
// injection is counted in waves_faults_injected_total{kind=...}.
//
// Compiled out entirely under -DWAVES_FAULTS=OFF (hooks become constant
// no-ops and dead-branch away), mirroring WAVES_OBS.
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef WAVES_FAULTS_ENABLED
#define WAVES_FAULTS_ENABLED 1
#endif

namespace waves::net {

inline constexpr bool kFaultsEnabled = WAVES_FAULTS_ENABLED != 0;

enum class FaultAction : std::uint8_t {
  kNone,
  kDrop,      // send: fail without writing; recv: fail without reading
  kDelay,     // sleep delay_ms, then proceed normally
  kTruncate,  // send a strict prefix, then fail (peer sees a short frame)
  kCorrupt,   // flip one byte, deliver the rest intact (peer sees bad CRC)
  kReset,     // hard-close the socket mid-operation
};

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::size_t offset = 0;     // kTruncate: bytes to send; kCorrupt: byte index
  std::uint8_t xor_mask = 0;  // kCorrupt: nonzero mask to flip
};

#if WAVES_FAULTS_ENABLED

/// Parse and arm a schedule for this process (overrides any earlier plan,
/// including the WAVES_FAULTS env). Empty spec disarms. False on a
/// malformed spec (plan left disarmed).
bool arm_faults(const char* spec);

/// True once a nonempty plan is armed (env is consulted on first call).
[[nodiscard]] bool faults_armed();

/// Decide the fate of one send of `len` bytes / one recv / one connect.
/// Counts the chosen kind and performs kDelay's sleep internally (the
/// returned action is then kNone).
[[nodiscard]] FaultDecision next_send_fault(std::size_t len);
[[nodiscard]] FaultDecision next_recv_fault();
[[nodiscard]] bool next_connect_drop();

#else  // hooks vanish; every call site dead-branches on kNone/false.

inline bool arm_faults(const char*) { return true; }
[[nodiscard]] inline bool faults_armed() { return false; }
[[nodiscard]] inline FaultDecision next_send_fault(std::size_t) { return {}; }
[[nodiscard]] inline FaultDecision next_recv_fault() { return {}; }
[[nodiscard]] inline bool next_connect_drop() { return false; }

#endif  // WAVES_FAULTS_ENABLED

}  // namespace waves::net
