#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <fcntl.h>
#endif

#include "obs/net_obs.hpp"

namespace waves::net {

namespace {

constexpr int kMaxEventsPerWake = 64;

}  // namespace

EventLoop::EventLoop(bool prefer_epoll) {
#ifdef __linux__
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) return;
  wake_read_ = efd;
  wake_write_ = efd;
  if (prefer_epoll) {
    ep_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep_ >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_;
      if (::epoll_ctl(ep_, EPOLL_CTL_ADD, wake_read_, &ev) != 0) {
        ::close(ep_);
        ep_ = -1;
      }
    }
  }
#else
  (void)prefer_epoll;
  int p[2];
  if (::pipe(p) != 0) return;
  for (const int fd : p) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  wake_read_ = p[0];
  wake_write_ = p[1];
#endif
  ok_ = true;
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (ep_ >= 0) ::close(ep_);
  if (wake_read_ >= 0) ::close(wake_read_);  // eventfd: one fd, both ends
#else
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
#endif
}

bool EventLoop::backend_add(int fd, bool r, bool w) {
#ifdef __linux__
  if (ep_ >= 0) {
    epoll_event ev{};
    ev.events = (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)r;
  (void)w;
  pollset_dirty_ = true;
  return true;
}

bool EventLoop::backend_mod(int fd, bool r, bool w) {
#ifdef __linux__
  if (ep_ >= 0) {
    epoll_event ev{};
    ev.events = (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)r;
  (void)w;
  pollset_dirty_ = true;
  return true;
}

void EventLoop::backend_del(int fd) {
#ifdef __linux__
  if (ep_ >= 0) {
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  (void)fd;
  pollset_dirty_ = true;
}

bool EventLoop::add_fd(int fd, bool want_read, bool want_write,
                       FdHandler handler) {
  if (fd < 0 || fds_.contains(fd)) return false;
  if (!backend_add(fd, want_read, want_write)) return false;
  fds_.emplace(fd, FdEntry{std::move(handler), want_read, want_write});
  return true;
}

bool EventLoop::mod_fd(int fd, bool want_read, bool want_write) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  if (it->second.want_read == want_read &&
      it->second.want_write == want_write) {
    return true;
  }
  if (!backend_mod(fd, want_read, want_write)) return false;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  return true;
}

void EventLoop::del_fd(int fd) {
  if (fds_.erase(fd) > 0) backend_del(fd);
}

EventLoop::TimerId EventLoop::arm_timer(std::chrono::milliseconds delay,
                                        std::function<void()> fn) {
  const auto ticks_needed = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, (delay.count() + kTimerTick.count() - 1) /
                                    kTimerTick.count()));
  const std::uint64_t target = ticks_done_ + ticks_needed;
  const auto slot = static_cast<std::uint32_t>(target % kTimerSlots);
  const auto rounds =
      static_cast<std::uint32_t>((ticks_needed - 1) / kTimerSlots);
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{std::move(fn), rounds, slot});
  slots_[slot].push_back(id);
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  // Lazy: the slot keeps a stale id until its lap comes around.
  timers_.erase(id);
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return -1;
  // Nearest armed slot bounds the sleep; entries still owing rounds wake
  // the loop early and simply survive the visit — cheap, and it keeps the
  // wheel walk strictly monotone. All signed arithmetic: an overdue slot
  // (the loop thread fell behind) must clamp to 0, never go negative —
  // epoll_wait treats a negative timeout as "block forever".
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            wheel_start_)
          .count();
  for (std::size_t d = 1; d <= kTimerSlots; ++d) {
    const std::size_t slot = (ticks_done_ + d) % kTimerSlots;
    if (slots_[slot].empty()) continue;
    const auto due_ms =
        static_cast<std::int64_t>(ticks_done_ + d) * kTimerTick.count();
    // elapsed_ms is floor-truncated, so a sub-millisecond remainder still
    // sleeps 1ms instead of busy-spinning epoll_wait(0) until the tick.
    return static_cast<int>(
        std::clamp<std::int64_t>(due_ms - elapsed_ms, 0, 60'000));
  }
  return static_cast<int>(kTimerTick.count());
}

void EventLoop::advance_timers() {
  const auto& obs = obs::NetLoopObs::instance();
  const auto now = Clock::now();
  const auto now_ticks =
      static_cast<std::uint64_t>((now - wheel_start_) / kTimerTick);
  while (ticks_done_ < now_ticks) {
    ++ticks_done_;
    const std::size_t slot = ticks_done_ % kTimerSlots;
    if (slots_[slot].empty()) continue;
    // Swap the slot out: callbacks may arm new timers into this same slot
    // (a full-lap delay) and those must wait for their own visit.
    std::vector<TimerId> batch;
    batch.swap(slots_[slot]);
    std::vector<TimerId> keep;
    for (const TimerId id : batch) {
      const auto it = timers_.find(id);
      if (it == timers_.end()) continue;  // cancelled: drop the stale ref
      if (it->second.rounds > 0) {
        --it->second.rounds;
        keep.push_back(id);
        continue;
      }
      std::function<void()> fn = std::move(it->second.fn);
      timers_.erase(it);
      obs.timer_fires.add();
      fn();
    }
    auto& vec = slots_[slot];
    vec.insert(vec.end(), keep.begin(), keep.end());
  }
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::wake() {
#ifdef __linux__
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(wake_write_, &one, sizeof(one));  // EAGAIN: already pending
#else
  const char b = 1;
  [[maybe_unused]] const auto n = ::write(wake_write_, &b, 1);
#endif
}

void EventLoop::drain_wakeup() {
  std::uint8_t buf[64];
  while (::read(wake_read_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::run_posted() {
  {
    std::lock_guard lk(post_mu_);
    posted_scratch_.swap(posted_);
  }
  for (auto& fn : posted_scratch_) fn();
  posted_scratch_.clear();
}

void EventLoop::run(const std::stop_token& st) {
  const auto& obs = obs::NetLoopObs::instance();
  while (!st.stop_requested()) {
    run_posted();
    advance_timers();
    if (st.stop_requested()) break;
    const int timeout = next_timeout_ms();

    // Collect (fd, mask) pairs first, dispatch second: a handler may
    // add/del registrations mid-batch, so every dispatch re-looks the fd
    // up and a deregistered one is skipped.
    struct Ready {
      int fd;
      std::uint32_t mask;
    };
    Ready ready[kMaxEventsPerWake];
    int n_ready = 0;

#ifdef __linux__
    if (ep_ >= 0) {
      epoll_event evs[kMaxEventsPerWake];
      const int n = ::epoll_wait(ep_, evs, kMaxEventsPerWake, timeout);
      obs.wakeups.add();
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll fd itself failed; nothing sane left to do
      }
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == wake_read_) {
          drain_wakeup();
          continue;
        }
        std::uint32_t mask = 0;
        if ((evs[i].events & (EPOLLIN | EPOLLPRI)) != 0) mask |= kReadable;
        if ((evs[i].events & EPOLLOUT) != 0) mask |= kWritable;
        if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0) mask |= kError;
        ready[n_ready++] = Ready{fd, mask};
      }
    } else
#endif
    {
      if (pollset_dirty_) {
        pollset_.clear();
        pollset_.push_back(pollfd{wake_read_, POLLIN, 0});
        for (const auto& [fd, e] : fds_) {
          const short ev = static_cast<short>((e.want_read ? POLLIN : 0) |
                                              (e.want_write ? POLLOUT : 0));
          pollset_.push_back(pollfd{fd, ev, 0});
        }
        pollset_dirty_ = false;
      }
      const int n = ::poll(pollset_.data(),
                           static_cast<nfds_t>(pollset_.size()), timeout);
      obs.wakeups.add();
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (const pollfd& p : pollset_) {
        if (p.revents == 0) continue;
        if (p.fd == wake_read_) {
          drain_wakeup();
          continue;
        }
        std::uint32_t mask = 0;
        if ((p.revents & (POLLIN | POLLPRI)) != 0) mask |= kReadable;
        if ((p.revents & POLLOUT) != 0) mask |= kWritable;
        if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) mask |= kError;
        if (n_ready < kMaxEventsPerWake) ready[n_ready++] = Ready{p.fd, mask};
      }
    }

    for (int i = 0; i < n_ready; ++i) {
      const auto it = fds_.find(ready[i].fd);
      if (it == fds_.end()) continue;  // deregistered earlier in this batch
      obs.events.add();
      it->second.handler(ready[i].mask);
    }
  }
}

WorkerPool::WorkerPool(std::size_t workers) {
  threads_.reserve(std::max<std::size_t>(1, workers));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, workers); ++i) {
    threads_.emplace_back(
        [this](const std::stop_token& st) { worker_loop(st); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  for (auto& t : threads_) t.request_stop();
  cv_.notify_all();
  threads_.clear();  // jthread dtor joins
}

void WorkerPool::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    if (stopping_) return;
    q_.push_back(std::move(job));
    obs::NetLoopObs::instance().queue_depth.set(static_cast<double>(q_.size()));
  }
  cv_.notify_one();
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

void WorkerPool::worker_loop(const std::stop_token& st) {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] {
        return stopping_ || st.stop_requested() || !q_.empty();
      });
      if (q_.empty()) {
        if (stopping_ || st.stop_requested()) return;
        continue;
      }
      job = std::move(q_.front());
      q_.pop_front();
      obs::NetLoopObs::instance().queue_depth.set(
          static_cast<double>(q_.size()));
    }
    job();
  }
}

std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw / 2, 2, 8);
}

}  // namespace waves::net
