// Transport core selector: every listening component (PartyServer, the
// hub's watcher fan-out) can run on either of two I/O cores that speak the
// identical wire protocol:
//
//   kThreads  the original thread-per-connection core — one blocking
//             handler thread per accepted socket. Simple, but connection
//             count is a thread-budget problem.
//   kEpoll    the readiness-driven core (net/event_loop.hpp) — one loop
//             thread multiplexing every connection plus a small fixed
//             worker pool for synopsis work. Connection count becomes an
//             fd-budget problem; idle push subscriptions cost a timer-wheel
//             slot instead of a sleeping thread.
//
// The default is kEpoll on Linux and kThreads elsewhere (the portable
// fallback inside EventLoop is poll(2)-based, but the thread core is the
// battle-tested path off-Linux). WAVES_IO_MODEL=threads|epoll overrides the
// default process-wide — the hook the differential CI job uses to pin the
// legacy core under the full test suite without touching any test.
#pragma once

#include <cstdint>
#include <string_view>

namespace waves::net {

enum class IoModel : std::uint8_t {
  kThreads = 1,
  kEpoll = 2,
};

/// Platform default after applying the WAVES_IO_MODEL env override (read
/// once per call; malformed values fall through to the platform default).
[[nodiscard]] IoModel default_io_model();

/// "threads" / "epoll" (stable: startup log lines and --io flags).
[[nodiscard]] const char* io_model_name(IoModel m);

/// Parse a --io flag value; false (out untouched) on anything else.
[[nodiscard]] bool parse_io_model(std::string_view s, IoModel& out);

}  // namespace waves::net
