// PartyServer's epoll core (ServerConfig::io_model == kEpoll): one
// EventLoop thread owns every connection's state machine, a fixed
// WorkerPool runs process_frame (the same frame logic the threads core
// runs), and push-drift checks are timer-wheel entries instead of sleeping
// threads. Per-connection state machine:
//
//       reading header ──> reading payload ──> computing ──> writing reply
//            ^  \_____________ (partial: deadline timer) ________/   |
//            |________________________<_______________________.______|
//                                                    push-armed (drift timer)
//
// Invariants that keep this core race-free with zero per-connection locks:
//   - the loop thread owns every Conn field except `sub`, which the worker
//     owns while `busy` is set (handoff happens-before via the pool queue
//     and loop.post's mutex);
//   - at most one worker job per connection is in flight (`busy`), so
//     frames are processed — and replies written — strictly in arrival
//     order, matching the threads core's request/reply alignment;
//   - writes never block: flush_writes sends until EAGAIN and parks the
//     residue in a bounded write queue drained on EPOLLOUT; a queue that
//     stays nonempty past the connection's write budget closes it
//     (backpressure instead of a blocked thread).
#include <cerrno>
#include <cstring>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "obs/net_obs.hpp"

namespace waves::net {

namespace {

// Pipelining bound: pending-but-undispatched frames per connection before
// the loop stops reading from it (kernel backpressure does the rest).
constexpr std::size_t kMaxPendingFrames = 32;
// Queued-write bound; a peer that won't drain this much is closed.
constexpr std::size_t kMaxWriteQueueBytes = std::size_t{4} << 20;
// Read throttle: stop pulling new requests while this much reply data is
// still queued (mirrors the threads core, which can't read mid-write).
constexpr std::size_t kWriteHighWater = std::size_t{256} << 10;

}  // namespace

struct PartyServer::LoopCore {
  explicit LoopCore(PartyServer& server)
      : srv(server),
        pool(server.cfg_.io_workers != 0 ? server.cfg_.io_workers
                                         : default_worker_count()) {}

  struct Conn {
    Socket sock;
    // -- read side (loop thread) --
    std::vector<std::uint8_t> inbuf;
    std::size_t inpos = 0;  // consumed prefix of inbuf
    std::deque<Frame> pending;
    bool peer_eof = false;
    bool read_enabled = true;
    // -- compute side --
    bool busy = false;           // one worker job in flight
    bool drift_pending = false;  // drift tick arrived while busy
    Subscription sub;            // worker-owned while busy
    bool sub_active = false;     // loop-thread snapshot of sub.active
    std::chrono::milliseconds drift_check{25};
    // -- write side (loop thread) --
    std::deque<Bytes> writeq;  // fully framed (header + payload) buffers
    std::size_t wq_head = 0;   // sent prefix of writeq.front()
    std::size_t wq_bytes = 0;
    bool want_write = false;
    bool close_after_flush = false;
    bool counted = false;  // counts against max_connections (not rejected)
    bool closed = false;
    std::chrono::milliseconds write_budget{5000};
    EventLoop::TimerId read_timer = 0;
    EventLoop::TimerId write_timer = 0;
    EventLoop::TimerId drift_timer = 0;
  };

  PartyServer& srv;
  EventLoop loop;
  WorkerPool pool;
  std::jthread thread;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::size_t serving = 0;  // counted connections (the max_connections set)
  bool draining = false;
  std::atomic<std::size_t> live{0};  // drain() polls this from outside
  std::vector<std::uint8_t> rdbuf = std::vector<std::uint8_t>(64 * 1024);

  // ---- lifecycle ----

  bool start() {
    if (!loop.ok()) return false;
    const bool ok = loop.add_fd(
        srv.listener_.fd(), /*read=*/true, /*write=*/false,
        [this](std::uint32_t) { on_accept(); });
    if (!ok) return false;
    thread = std::jthread([this](const std::stop_token& st) { loop.run(st); });
    return true;
  }

  void begin_drain() {
    draining = true;
    loop.del_fd(srv.listener_.fd());
    // Close everything idle; busy connections flush their last reply and
    // close at completion — same contract as the threads core's grace.
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns.size());
    for (auto& [fd, c] : conns) snapshot.push_back(c);
    for (auto& c : snapshot) {
      c->close_after_flush = true;
      if (!c->busy) flush_writes(c);
    }
  }

  // ---- accept path ----

  void on_accept() {
    const auto& obs = obs::NetServerObs::instance();
    // Accept until EAGAIN: one readiness event may carry a whole burst of
    // queued peers, and leaving any behind would strand them until the
    // next connect wakes the loop.
    while (true) {
      Socket s = srv.listener_.try_accept();
      if (!s.valid()) break;
      obs.connections.add();
      if (draining) continue;  // RAII closes it
      auto c = std::make_shared<Conn>();
      c->sock = std::move(s);
      c->write_budget = srv.cfg_.io_deadline;
      if (serving >= srv.cfg_.max_connections) {
        // Typed rejection, nonblocking flavor: queue one kOverloaded Err
        // and give the peer a short courtesy budget to take it.
        obs.overload_rejected.add();
        ErrReply err{0, ErrCode::kOverloaded, "connection limit reached"};
        c->close_after_flush = true;
        c->write_budget = std::chrono::milliseconds(100);
        if (!register_conn(c)) continue;
        enqueue_frame(c, MsgType::kErr, err.encode());
        flush_writes(c);
        continue;
      }
      c->counted = true;
      if (!register_conn(c)) continue;
      ++serving;
      live.fetch_add(1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool register_conn(const std::shared_ptr<Conn>& c) {
    const int fd = c->sock.fd();
    const bool ok =
        loop.add_fd(fd, /*read=*/!c->close_after_flush, /*write=*/false,
                    [this, fd](std::uint32_t mask) { on_event(fd, mask); });
    if (!ok) return false;
    c->read_enabled = !c->close_after_flush;
    conns.emplace(fd, c);
    return true;
  }

  // ---- event dispatch ----

  void on_event(int fd, std::uint32_t mask) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    std::shared_ptr<Conn> c = it->second;
    if ((mask & EventLoop::kReadable) != 0) {
      on_readable(c);
      if (c->closed) return;
    }
    if ((mask & EventLoop::kWritable) != 0) {
      flush_writes(c);
      if (c->closed) return;
    }
    if ((mask & EventLoop::kError) != 0 &&
        (mask & (EventLoop::kReadable | EventLoop::kWritable)) == 0) {
      close_conn(c);
    }
  }

  void on_readable(const std::shared_ptr<Conn>& c) {
    const auto& obs = obs::NetServerObs::instance();
    if constexpr (kFaultsEnabled) {
      if (faults_armed()) {
        const FaultDecision f = next_recv_fault();
        if (f.action == FaultAction::kDrop ||
            f.action == FaultAction::kReset) {
          close_conn(c);
          return;
        }
      }
    }
    std::size_t got = 0;
    while (got < kWriteHighWater) {  // per-event read bound: no starvation
      const ssize_t n = ::recv(c->sock.fd(), rdbuf.data(), rdbuf.size(), 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        c->inbuf.insert(c->inbuf.end(), rdbuf.data(), rdbuf.data() + n);
        if (static_cast<std::size_t>(n) < rdbuf.size()) break;
        continue;
      }
      if (n == 0) {
        c->peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(c);  // hard socket error
      return;
    }

    // Extract every complete frame; a malformed header loses framing for
    // good, exactly like the threads core's read_frame.
    while (c->inbuf.size() - c->inpos >= kHeaderSize) {
      MsgType type{};
      std::uint32_t len = 0;
      if (!parse_header(c->inbuf.data() + c->inpos, type, len)) {
        obs.frame_errors.add();
        ErrReply err{0, ErrCode::kBadRequest, "malformed frame"};
        enqueue_frame(c, MsgType::kErr, err.encode());
        c->close_after_flush = true;
        set_read_enabled(c, false);
        flush_writes(c);
        return;
      }
      if (c->inbuf.size() - c->inpos < kHeaderSize + len) break;
      Frame f;
      f.type = type;
      const auto* p = c->inbuf.data() + c->inpos + kHeaderSize;
      f.payload.assign(p, p + len);
      c->inpos += kHeaderSize + len;
      obs.bytes_received.add(kHeaderSize + f.payload.size());
      c->pending.push_back(std::move(f));
    }
    if (c->inpos == c->inbuf.size()) {
      c->inbuf.clear();
      c->inpos = 0;
    } else if (c->inpos > rdbuf.size()) {
      c->inbuf.erase(c->inbuf.begin(),
                     c->inbuf.begin() + static_cast<std::ptrdiff_t>(c->inpos));
      c->inpos = 0;
    }

    // Slow-loris guard: a partial frame must complete within io_deadline
    // of its first byte or the deadline wheel expires the connection —
    // without ever stalling another session.
    const bool partial = c->inbuf.size() > c->inpos;
    if (partial && c->read_timer == 0) {
      std::weak_ptr<Conn> w = c;
      c->read_timer = loop.arm_timer(srv.cfg_.io_deadline, [this, w] {
        if (auto cc = w.lock(); cc && !cc->closed) {
          cc->read_timer = 0;
          close_conn(cc);
        }
      });
    } else if (!partial && c->read_timer != 0) {
      loop.cancel_timer(c->read_timer);
      c->read_timer = 0;
    }

    if (c->peer_eof && c->pending.empty() && !c->busy && c->writeq.empty()) {
      close_conn(c);
      return;
    }
    update_read_interest(c);
    dispatch_next(c);
  }

  // ---- compute path ----

  void dispatch_next(const std::shared_ptr<Conn>& c) {
    if (c->busy || c->closed || c->close_after_flush) return;
    if (!c->pending.empty()) {
      Frame f = std::move(c->pending.front());
      c->pending.pop_front();
      c->busy = true;
      pool.submit([this, c, f = std::move(f)]() mutable {
        auto out = std::make_shared<Outbox>();
        const ConnAction act = srv.process_frame(f, c->sub, *out);
        loop.post([this, c, out, act] { complete(c, *out, act); });
      });
      return;
    }
    if (c->drift_pending) {
      c->drift_pending = false;
      c->busy = true;
      pool.submit([this, c] {
        auto out = std::make_shared<Outbox>();
        srv.drift_tick(c->sub, *out);
        loop.post([this, c, out] { complete(c, *out, ConnAction::kKeep); });
      });
    }
  }

  void complete(const std::shared_ptr<Conn>& c, Outbox& out, ConnAction act) {
    c->busy = false;
    if (c->closed) return;
    // The worker has handed `sub` back; snapshot what the loop thread
    // needs for timer management.
    c->sub_active = c->sub.active;
    c->drift_check = c->sub.check;
    for (OutFrame& f : out) {
      enqueue_frame(c, f.type, std::move(f.payload));
      if (c->closed) return;  // injected send fault dropped the connection
    }
    if (act == ConnAction::kClose) {
      c->close_after_flush = true;
      set_read_enabled(c, false);
    }
    flush_writes(c);
    if (c->closed || c->close_after_flush) return;
    if (c->peer_eof && c->pending.empty() && c->writeq.empty()) {
      close_conn(c);
      return;
    }
    manage_drift_timer(c);
    update_read_interest(c);
    dispatch_next(c);
  }

  void manage_drift_timer(const std::shared_ptr<Conn>& c) {
    if (c->sub_active && c->drift_timer == 0) {
      arm_drift_timer(c);
    } else if (!c->sub_active && c->drift_timer != 0) {
      loop.cancel_timer(c->drift_timer);
      c->drift_timer = 0;
      c->drift_pending = false;
    }
  }

  void arm_drift_timer(const std::shared_ptr<Conn>& c) {
    std::weak_ptr<Conn> w = c;
    c->drift_timer = loop.arm_timer(c->drift_check, [this, w] {
      auto cc = w.lock();
      if (!cc || cc->closed) return;
      cc->drift_timer = 0;
      if (!cc->sub_active || cc->close_after_flush) return;
      arm_drift_timer(cc);  // fixed cadence, like the threads core's tick
      if (cc->busy) {
        cc->drift_pending = true;  // coalesces: one pending check at most
      } else {
        cc->drift_pending = true;
        dispatch_next(cc);
      }
    });
  }

  // ---- write path ----

  void enqueue_frame(const std::shared_ptr<Conn>& c, MsgType type,
                     Bytes payload) {
    const auto& obs = obs::NetServerObs::instance();
    const auto header =
        put_header(type, static_cast<std::uint32_t>(payload.size()));
    Bytes buf(kHeaderSize + payload.size());
    std::memcpy(buf.data(), header.data(), kHeaderSize);
    if (!payload.empty()) {
      std::memcpy(buf.data() + kHeaderSize, payload.data(), payload.size());
    }
    if constexpr (kFaultsEnabled) {
      // Mirror Socket::send_all's per-frame fault draw so WAVES_FAULTS
      // chaos runs exercise this core identically.
      if (faults_armed()) {
        const FaultDecision f = next_send_fault(buf.size());
        switch (f.action) {
          case FaultAction::kDrop:
          case FaultAction::kReset:
            close_conn(c);
            return;
          case FaultAction::kTruncate:
            buf.resize(f.offset);
            c->close_after_flush = true;
            break;
          case FaultAction::kCorrupt:
            buf[f.offset] ^= f.xor_mask;
            break;
          case FaultAction::kDelay:
          case FaultAction::kNone:
            break;
        }
      }
    }
    c->wq_bytes += buf.size();
    c->writeq.push_back(std::move(buf));
    obs.bytes_sent.add(kHeaderSize + payload.size());
    if (c->wq_bytes > kMaxWriteQueueBytes) {
      close_conn(c);  // peer can't keep up; byte cap bounds the memory
    }
  }

  void flush_writes(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    while (!c->writeq.empty()) {
      const Bytes& front = c->writeq.front();
      const ssize_t n = ::send(c->sock.fd(), front.data() + c->wq_head,
                               front.size() - c->wq_head, MSG_NOSIGNAL);
      if (n > 0) {
        c->wq_head += static_cast<std::size_t>(n);
        c->wq_bytes -= static_cast<std::size_t>(n);
        if (c->wq_head == front.size()) {
          c->writeq.pop_front();
          c->wq_head = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(c);
      return;
    }
    if (c->writeq.empty()) {
      if (c->write_timer != 0) {
        loop.cancel_timer(c->write_timer);
        c->write_timer = 0;
      }
      set_want_write(c, false);
      if (c->close_after_flush) {
        close_conn(c);
        return;
      }
      update_read_interest(c);
      return;
    }
    // Residue: arm EPOLLOUT and the write budget (stall -> close).
    obs::NetLoopObs::instance().stalled_writes.add();
    set_want_write(c, true);
    if (c->write_timer == 0) {
      std::weak_ptr<Conn> w = c;
      c->write_timer = loop.arm_timer(c->write_budget, [this, w] {
        if (auto cc = w.lock(); cc && !cc->closed) {
          cc->write_timer = 0;
          close_conn(cc);
        }
      });
    }
  }

  // ---- interest management ----

  void set_want_write(const std::shared_ptr<Conn>& c, bool w) {
    if (c->want_write == w) return;
    c->want_write = w;
    (void)loop.mod_fd(c->sock.fd(), c->read_enabled, w);
  }

  void set_read_enabled(const std::shared_ptr<Conn>& c, bool r) {
    if (c->read_enabled == r) return;
    c->read_enabled = r;
    (void)loop.mod_fd(c->sock.fd(), r, c->want_write);
  }

  void update_read_interest(const std::shared_ptr<Conn>& c) {
    const bool throttled = c->pending.size() >= kMaxPendingFrames ||
                           c->wq_bytes >= kWriteHighWater;
    set_read_enabled(c, !c->close_after_flush && !c->peer_eof && !throttled);
  }

  // ---- teardown ----

  void close_conn(const std::shared_ptr<Conn>& c) {
    if (c->closed) return;
    c->closed = true;
    if (c->read_timer != 0) loop.cancel_timer(c->read_timer);
    if (c->write_timer != 0) loop.cancel_timer(c->write_timer);
    if (c->drift_timer != 0) loop.cancel_timer(c->drift_timer);
    c->read_timer = c->write_timer = c->drift_timer = 0;
    loop.del_fd(c->sock.fd());
    conns.erase(c->sock.fd());
    if (c->counted) {
      --serving;
      live.fetch_sub(1, std::memory_order_relaxed);
    }
    c->sock.close();
  }
};

PartyServer::~PartyServer() { stop(); }

void PartyServer::LoopCoreDeleter::operator()(LoopCore* core) const {
  delete core;
}

bool PartyServer::loop_start() {
  loop_ = std::unique_ptr<LoopCore, LoopCoreDeleter>(new LoopCore(*this));
  if (loop_->start()) return true;
  loop_.reset();
  return false;
}

void PartyServer::loop_stop() {
  if (loop_ == nullptr) return;
  if (loop_->thread.joinable()) {
    loop_->thread.request_stop();
    loop_->loop.wake();
    loop_->thread.join();
  }
  // LoopCore's destructor order finishes the job: the pool joins its
  // workers (in-flight jobs post into the still-live loop object, where
  // the closures are simply never run), then the loop and conns go.
  loop_.reset();
}

void PartyServer::loop_drain(std::chrono::milliseconds grace) {
  if (loop_ == nullptr) return;
  loop_->loop.post([core = loop_.get()] { core->begin_drain(); });
  loop_->loop.wake();
  const Deadline dl = deadline_in(grace);
  while (loop_->live.load(std::memory_order_relaxed) > 0 &&
         Clock::now() < dl) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  loop_stop();
  listener_.close();
}

}  // namespace waves::net
