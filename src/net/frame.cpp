#include "net/frame.hpp"

#include <cstring>

namespace waves::net {

bool valid_msg_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kHello) &&
         t <= static_cast<std::uint8_t>(MsgType::kHealthReply);
}

std::array<std::uint8_t, kHeaderSize> put_header(MsgType type,
                                                 std::uint32_t payload_len) {
  std::array<std::uint8_t, kHeaderSize> h{};
  std::memcpy(h.data(), kMagic.data(), kMagic.size());
  h[4] = kProtocolVersion;
  h[5] = static_cast<std::uint8_t>(type);
  h[6] = static_cast<std::uint8_t>(payload_len & 0xFFu);
  h[7] = static_cast<std::uint8_t>((payload_len >> 8) & 0xFFu);
  h[8] = static_cast<std::uint8_t>((payload_len >> 16) & 0xFFu);
  h[9] = static_cast<std::uint8_t>((payload_len >> 24) & 0xFFu);
  return h;
}

bool parse_header(const std::uint8_t* buf, MsgType& type, std::uint32_t& len) {
  if (std::memcmp(buf, kMagic.data(), kMagic.size()) != 0) return false;
  if (buf[4] < kMinProtocolVersion || buf[4] > kProtocolVersion) return false;
  if (!valid_msg_type(buf[5])) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(buf[6]) |
                          (static_cast<std::uint32_t>(buf[7]) << 8) |
                          (static_cast<std::uint32_t>(buf[8]) << 16) |
                          (static_cast<std::uint32_t>(buf[9]) << 24);
  if (n > kMaxPayload) return false;
  type = static_cast<MsgType>(buf[5]);
  len = n;
  return true;
}

bool write_frame(Socket& sock, MsgType type,
                 const std::vector<std::uint8_t>& payload, Deadline dl) {
  // Per-thread scratch: steady-state queries reuse the high-water capacity
  // instead of allocating header+payload per frame.
  static thread_local std::vector<std::uint8_t> buf;
  buf.resize(kHeaderSize + payload.size());
  const auto h = put_header(type, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(buf.data(), h.data(), kHeaderSize);
  if (!payload.empty()) {
    std::memcpy(buf.data() + kHeaderSize, payload.data(), payload.size());
  }
  return sock.send_all(buf.data(), buf.size(), dl);
}

ReadStatus read_frame(Socket& sock, Frame& out, Deadline dl) {
  std::array<std::uint8_t, kHeaderSize> hdr;
  switch (sock.recv_exact(hdr.data(), hdr.size(), dl)) {
    case IoResult::kOk:
      break;
    case IoResult::kTimeout:
      return ReadStatus::kTimeout;
    case IoResult::kClosed:
      return ReadStatus::kClosed;
    case IoResult::kError:
      return ReadStatus::kClosed;
  }

  MsgType type{};
  std::uint32_t len = 0;
  if (!parse_header(hdr.data(), type, len)) return ReadStatus::kMalformed;

  // Read into per-thread scratch, then assign into the caller's Frame: the
  // contract ("out untouched on any non-kOk status") survives, and a caller
  // that reuses its Frame across rounds pays zero steady-state allocations
  // (assign reuses out.payload's capacity; scratch keeps its high-water
  // mark).
  static thread_local std::vector<std::uint8_t> payload;
  payload.resize(len);
  if (len > 0) {
    switch (sock.recv_exact(payload.data(), payload.size(), dl)) {
      case IoResult::kOk:
        break;
      case IoResult::kTimeout:
        return ReadStatus::kTimeout;
      case IoResult::kClosed:
      case IoResult::kError:
        return ReadStatus::kClosed;
    }
  }
  out.type = type;
  out.payload.assign(payload.begin(), payload.end());
  return ReadStatus::kOk;
}

}  // namespace waves::net
