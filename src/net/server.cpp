#include "net/server.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "obs/export.hpp"
#include "obs/monitor_obs.hpp"
#include "obs/net_obs.hpp"
#include "obs/trace.hpp"
#include "recovery/delta.hpp"

namespace waves::net {

void BasicPartyState::observe(bool bit) {
  std::lock_guard lk(mu_);
  wave_.update(bit);
  ++items_;
}

void BasicPartyState::observe_batch(const util::PackedBitStream& bits) {
  std::lock_guard lk(mu_);
  wave_.update_batch(bits);
  items_ += bits.size();
}

core::Estimate BasicPartyState::query(std::uint64_t n) const {
  std::lock_guard lk(mu_);
  return wave_.query(n);
}

std::uint64_t BasicPartyState::items() const {
  std::lock_guard lk(mu_);
  return items_;
}

std::uint64_t BasicPartyState::change_cursor() const {
  std::lock_guard lk(mu_);
  return wave_.change_cursor();
}

recovery::BasicPartyCheckpoint BasicPartyState::checkpoint() const {
  std::lock_guard lk(mu_);
  return recovery::BasicPartyCheckpoint{items_, wave_.checkpoint()};
}

void BasicPartyState::restore(const recovery::BasicPartyCheckpoint& ck) {
  std::lock_guard lk(mu_);
  wave_ = core::DetWave::restore(inv_eps_, window_, ck.wave);
  items_ = ck.cursor;
}

void SumPartyState::observe(std::uint64_t value) {
  std::lock_guard lk(mu_);
  wave_.update(value);
  ++items_;
}

void SumPartyState::observe_batch(std::span<const std::uint64_t> values) {
  std::lock_guard lk(mu_);
  for (const std::uint64_t v : values) wave_.update(v);
  items_ += values.size();
}

core::Estimate SumPartyState::query(std::uint64_t n) const {
  std::lock_guard lk(mu_);
  return wave_.query(n);
}

std::uint64_t SumPartyState::items() const {
  std::lock_guard lk(mu_);
  return items_;
}

std::uint64_t SumPartyState::change_cursor() const {
  std::lock_guard lk(mu_);
  return wave_.change_cursor();
}

recovery::SumPartyCheckpoint SumPartyState::checkpoint() const {
  std::lock_guard lk(mu_);
  return recovery::SumPartyCheckpoint{items_, wave_.checkpoint()};
}

void SumPartyState::restore(const recovery::SumPartyCheckpoint& ck) {
  std::lock_guard lk(mu_);
  wave_ = core::SumWave::restore(inv_eps_, window_, max_value_, ck.wave);
  items_ = ck.cursor;
}

void AggPartyState::observe(std::int64_t value) {
  std::lock_guard lk(mu_);
  wave_.update(value);
  ++items_;
}

void AggPartyState::observe_batch(std::span<const std::int64_t> values) {
  std::lock_guard lk(mu_);
  wave_.update_bulk(values);
  items_ += values.size();
}

std::int64_t AggPartyState::value() const {
  std::lock_guard lk(mu_);
  return wave_.value();
}

std::uint64_t AggPartyState::items() const {
  std::lock_guard lk(mu_);
  return items_;
}

recovery::AggPartyCheckpoint AggPartyState::checkpoint() const {
  std::lock_guard lk(mu_);
  return recovery::AggPartyCheckpoint{items_, wave_.checkpoint()};
}

void AggPartyState::restore(const recovery::AggPartyCheckpoint& ck) {
  std::lock_guard lk(mu_);
  wave_ = agg::AggWave::restore(wave_.op(), wave_.window(), ck.wave);
  items_ = ck.cursor;
}

PartyServer::PartyServer(ServerConfig cfg, distributed::CountParty* party)
    : cfg_(std::move(cfg)), role_(PartyRole::kCount), count_(party) {}

PartyServer::PartyServer(ServerConfig cfg, distributed::DistinctParty* party)
    : cfg_(std::move(cfg)), role_(PartyRole::kDistinct), distinct_(party) {}

PartyServer::PartyServer(ServerConfig cfg, BasicPartyState* party)
    : cfg_(std::move(cfg)), role_(PartyRole::kBasic), basic_(party) {}

PartyServer::PartyServer(ServerConfig cfg, SumPartyState* party)
    : cfg_(std::move(cfg)), role_(PartyRole::kSum), sum_(party) {}

PartyServer::PartyServer(ServerConfig cfg, AggPartyState* party)
    : cfg_(std::move(cfg)), role_(PartyRole::kAgg), agg_(party) {}

// ~PartyServer lives in server_loop.cpp, where LoopCore is complete.

bool PartyServer::start() {
  if (!listener_.listen_on(cfg_.host, cfg_.port)) return false;
  obs::NetLoopObs::instance().io_model.set(
      static_cast<double>(static_cast<std::uint8_t>(cfg_.io_model)));
  if (cfg_.io_model == IoModel::kEpoll) {
    if (loop_start()) return true;
    listener_.close();
    return false;
  }
  accept_thread_ =
      std::jthread([this](const std::stop_token& st) { accept_loop(st); });
  return true;
}

void PartyServer::stop() {
  loop_stop();
  if (accept_thread_.joinable()) {
    accept_thread_.request_stop();
    accept_thread_.join();
  }
  {
    std::lock_guard lk(conns_mu_);
    for (Conn& c : conns_) c.thread.request_stop();
  }
  // Handler jthreads honor the stop token within one io_deadline tick; join
  // them by clearing the list (jthread dtor joins).
  std::lock_guard lk(conns_mu_);
  conns_.clear();
  listener_.close();
}

void PartyServer::reap_finished() {
  std::lock_guard lk(conns_mu_);
  std::erase_if(conns_, [](Conn& c) {
    return c.done->load(std::memory_order_acquire);
  });
}

void PartyServer::accept_loop(const std::stop_token& st) {
  const auto& obs = obs::NetServerObs::instance();
  while (!st.stop_requested()) {
    Socket sock =
        listener_.accept_one(deadline_in(std::chrono::milliseconds(100)));
    if (!sock.valid()) {
      reap_finished();
      continue;
    }
    obs.connections.add();
    // Connection cap (thread-per-connection: this bounds handler threads).
    // Reap first so finished handlers don't count against a fresh accept;
    // over the cap, answer one typed Err frame and close — the peer learns
    // why instead of seeing a silent RST, and the daemon's thread count
    // stays bounded no matter how many watchers stampede it.
    reap_finished();
    bool over_cap = false;
    {
      std::lock_guard lk(conns_mu_);
      over_cap = conns_.size() >= cfg_.max_connections;
    }
    if (over_cap) {
      obs.overload_rejected.add();
      ErrReply err{0, ErrCode::kOverloaded, "connection limit reached"};
      const Bytes payload = err.encode();
      // Short deadline, outside conns_mu_: the rejection is a courtesy,
      // and a peer too stalled to take one small frame in 100ms must not
      // head-of-line-block the accept loop (or the lock) for the full
      // io_deadline while legitimate clients queue behind it.
      if (write_frame(sock, MsgType::kErr, payload,
                      deadline_in(std::chrono::milliseconds(100)))) {
        obs.bytes_sent.add(kHeaderSize + payload.size());
      }
      continue;  // RAII closes the socket
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::jthread handler(
        [this, done](const std::stop_token& hst, Socket s) {
          serve_connection(std::move(s), hst);
          done->store(true, std::memory_order_release);
        },
        std::move(sock));
    {
      std::lock_guard lk(conns_mu_);
      conns_.push_back(Conn{std::move(handler), std::move(done)});
    }
    reap_finished();
  }
}

void PartyServer::drain(std::chrono::milliseconds grace) {
  if (loop_ != nullptr) {
    loop_drain(grace);
    return;
  }
  // No new connections from here on.
  if (accept_thread_.joinable()) {
    accept_thread_.request_stop();
    accept_thread_.join();
  }
  listener_.close();
  // Let in-flight exchanges complete: handlers that are idle-waiting notice
  // a stop within one 100ms tick; ones mid-reply finish their write.
  const Deadline dl = deadline_in(grace);
  for (;;) {
    reap_finished();
    {
      std::lock_guard lk(conns_mu_);
      if (conns_.empty()) break;
    }
    if (Clock::now() >= dl) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop();  // stragglers past the grace window are stopped the hard way
}

void PartyServer::note_checkpoint() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now().time_since_epoch())
                      .count();
  last_checkpoint_ns_.store(static_cast<std::uint64_t>(ns),
                            std::memory_order_relaxed);
}

HealthReply PartyServer::health_reply(std::uint64_t request_id) const {
  HealthReply r;
  r.request_id = request_id;
  r.role = role_;
  r.party_id = cfg_.party_id;
  r.generation = cfg_.generation;
  switch (role_) {
    case PartyRole::kCount:
      r.items_observed = count_->items_observed();
      break;
    case PartyRole::kDistinct:
      r.items_observed = distinct_->items_observed();
      break;
    case PartyRole::kBasic:
      r.items_observed = basic_->items();
      break;
    case PartyRole::kSum:
      r.items_observed = sum_->items();
      break;
    case PartyRole::kAgg:
      r.items_observed = agg_->items();
      break;
  }
  const auto now = Clock::now();
  r.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - started_)
          .count());
  const std::uint64_t ck = last_checkpoint_ns_.load(std::memory_order_relaxed);
  if (ck == 0) {
    r.checkpoint_age_ms = ~std::uint64_t{0};
  } else {
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
    r.checkpoint_age_ms = now_ns >= ck ? (now_ns - ck) / 1'000'000 : 0;
  }
  return r;
}

HelloAck PartyServer::hello_ack() const {
  HelloAck ack;
  ack.role = role_;
  ack.party_id = cfg_.party_id;
  ack.generation = cfg_.generation;
  switch (role_) {
    case PartyRole::kCount:
      ack.instances = static_cast<std::uint64_t>(count_->instances());
      ack.items_observed = count_->items_observed();
      // All instances share the window parameter; a delta-capable client
      // needs it to derive snapshots from mirrored checkpoints.
      ack.window = count_->instances() > 0 ? count_->instance(0).window() : 0;
      break;
    case PartyRole::kDistinct:
      ack.instances = static_cast<std::uint64_t>(distinct_->instances());
      ack.items_observed = distinct_->items_observed();
      ack.window =
          distinct_->instances() > 0 ? distinct_->instance(0).window() : 0;
      break;
    case PartyRole::kBasic:
      ack.window = basic_->window();
      ack.items_observed = basic_->items();
      break;
    case PartyRole::kSum:
      ack.window = sum_->window();
      ack.items_observed = sum_->items();
      break;
    case PartyRole::kAgg:
      ack.window = agg_->window();
      ack.items_observed = agg_->items();
      break;
  }
  return ack;
}

template <class Party, class Checkpoint>
void PartyServer::delta_answer(Party* party, DeltaState<Checkpoint>& st,
                               const SnapshotRequest& req,
                               DeltaReply& r) const {
  const auto& obs = obs::NetServerObs::instance();
  std::lock_guard lk(st.mu);
  // Unchanged fast-path: the client's baseline is our current one and the
  // party ingested nothing since it was taken — echo the cursor, empty
  // body, no checkpoint walk at all.
  if (req.since_cursor != 0 && req.since_cursor == st.serial &&
      party->items_observed() == st.base.cursor) {
    r.base_cursor = st.serial;
    r.cursor = st.serial;
    obs.delta_unchanged.add();
    return;
  }
  Checkpoint now = party->checkpoint();
  const std::uint64_t next = st.serial + 1;
  if (req.since_cursor != 0 && req.since_cursor == st.serial) {
    r.base_cursor = st.serial;
    r.body = recovery::encode_delta(st.base, now);
    obs.delta_replies.add();
  } else {
    // Bootstrap (since_cursor 0) or a cursor we no longer hold (another
    // client advanced the baseline, or this process restarted): ship a
    // self-contained full body. base_cursor 0 tells the client so.
    r.base_cursor = 0;
    r.body = recovery::encode(now);
    obs.delta_full.add();
  }
  r.cursor = next;
  st.serial = next;
  st.base = std::move(now);
}

void PartyServer::count_delta_answer(const SnapshotRequest& req,
                                     DeltaReply& r) const {
  const auto& obs = obs::NetServerObs::instance();
  CountDeltaState& st = count_delta_;
  std::lock_guard lk(st.mu);
  // Unchanged fast-path: the client's baseline is our current one and the
  // party ingested nothing since it was taken — echo the cursor, empty
  // body, no synopsis walk at all.
  if (req.since_cursor != 0 && req.since_cursor == st.serial &&
      st.baseline.valid && count_->items_observed() == st.baseline.cursor) {
    r.base_cursor = st.serial;
    r.cursor = st.serial;
    obs.delta_unchanged.add();
    return;
  }
  // Retry cache: same since_cursor as the previous reply and nothing
  // ingested since it was encoded — the client never applied it (timeout,
  // reconnect), so the identical body is still the right answer even
  // though the baseline has moved past req.since_cursor.
  if (st.cache_valid && req.since_cursor == st.cached_since &&
      req.since_cursor != 0 && count_->items_observed() == st.cached_items) {
    r.base_cursor = st.cached_base_cursor;
    r.cursor = st.cached_cursor;
    r.body = st.cached_body;
    if (r.base_cursor != 0) {
      obs.delta_replies.add();
    } else {
      obs.delta_full.add();
    }
    return;
  }
  const std::uint64_t next = st.serial + 1;
  r.body.clear();
  if (req.since_cursor != 0 && req.since_cursor == st.serial &&
      st.baseline.valid &&
      recovery::encode_delta_live(*count_, st.baseline, r.body)) {
    // O(change) diff straight out of the live rings; the baseline summary
    // now describes the state just encoded.
    r.base_cursor = st.serial;
    obs.delta_replies.add();
  } else {
    // Bootstrap (since_cursor 0), a cursor we no longer hold (another
    // client advanced the baseline, or this process restarted), or a live
    // shape the diff form can't express: ship a self-contained full body.
    // base_cursor 0 tells the client so.
    distributed::CountPartyCheckpoint now = count_->checkpoint();
    r.base_cursor = 0;
    r.body = recovery::encode(now);
    recovery::baseline_from_checkpoint(now, st.baseline);
    obs.delta_full.add();
  }
  r.cursor = next;
  st.serial = next;
  st.cache_valid = true;
  st.cached_since = req.since_cursor;
  st.cached_items = st.baseline.cursor;
  st.cached_base_cursor = r.base_cursor;
  st.cached_cursor = r.cursor;
  st.cached_body = r.body;
}

void PartyServer::answer(const SnapshotRequest& req, Outbox& out) {
  // Server-side handling span. When the request carries a trace context
  // (extension tag 2) this joins the client's trace: a later format=trace
  // scrape of this process returns it under the same trace id, and
  // `wavecli query --trace` stitches it below the client's per-party span.
  auto span = obs::Tracer::instance().start(
      "party.answer", obs::TraceContext{req.trace_id, req.parent_span_id});
  span.set("party", static_cast<double>(cfg_.party_id));
  span.set("n", static_cast<double>(req.n));
  auto send = [&](MsgType type, Bytes payload) {
    span.set("reply_bytes", static_cast<double>(payload.size()));
    out.push_back(OutFrame{type, std::move(payload)});
  };

  if (req.role != role_) {
    ErrReply err{req.request_id, ErrCode::kWrongRole,
                 std::string("party serves role ") + role_name(role_)};
    send(MsgType::kErr, err.encode());
    return;
  }

  const bool delta = req.delta_capable && cfg_.enable_delta &&
                     (role_ == PartyRole::kCount ||
                      role_ == PartyRole::kDistinct);

  switch (role_) {
    case PartyRole::kCount: {
      if (delta) {
        DeltaReply r;
        r.request_id = req.request_id;
        r.generation = cfg_.generation;
        r.role = role_;
        {
          // Covers the checkpoint walk (which contends with the ingest
          // lock) and the delta diff — the "interference" phase.
          auto d = obs::Tracer::instance().start("party.delta",
                                                 span.context());
          count_delta_answer(req, r);
          d.set("body_bytes", static_cast<double>(r.body.size()));
          d.set("full", r.base_cursor == 0 ? 1.0 : 0.0);
        }
        send(MsgType::kDeltaReply, r.encode());
        return;
      }
      CountReply r;
      r.request_id = req.request_id;
      r.generation = cfg_.generation;
      {
        [[maybe_unused]] auto s = obs::Tracer::instance().start(
            "party.snapshot", span.context());
        r.snapshots = count_->snapshots(req.n);
      }
      send(MsgType::kCountReply, r.encode());
      return;
    }
    case PartyRole::kDistinct: {
      if (delta) {
        DeltaReply r;
        r.request_id = req.request_id;
        r.generation = cfg_.generation;
        r.role = role_;
        {
          auto d = obs::Tracer::instance().start("party.delta",
                                                 span.context());
          delta_answer(distinct_, distinct_delta_, req, r);
          d.set("body_bytes", static_cast<double>(r.body.size()));
          d.set("full", r.base_cursor == 0 ? 1.0 : 0.0);
        }
        send(MsgType::kDeltaReply, r.encode());
        return;
      }
      DistinctReply r;
      r.request_id = req.request_id;
      r.generation = cfg_.generation;
      {
        [[maybe_unused]] auto s = obs::Tracer::instance().start(
            "party.snapshot", span.context());
        r.snapshots = distinct_->snapshots(req.n);
      }
      send(MsgType::kDistinctReply, r.encode());
      return;
    }
    case PartyRole::kBasic: {
      const core::Estimate est = basic_->query(req.n);
      TotalReply r{req.request_id, cfg_.generation, est.value, est.exact,
                   basic_->items()};
      send(MsgType::kTotalReply, r.encode());
      return;
    }
    case PartyRole::kSum: {
      const core::Estimate est = sum_->query(req.n);
      TotalReply r{req.request_id, cfg_.generation, est.value, est.exact,
                   sum_->items()};
      send(MsgType::kTotalReply, r.encode());
      return;
    }
    case PartyRole::kAgg: {
      AggReply r;
      r.request_id = req.request_id;
      r.generation = cfg_.generation;
      r.op = agg_->op();
      r.value = agg_->value();
      r.items_observed = agg_->items();
      r.window = agg_->window();
      send(MsgType::kAggReply, r.encode());
      return;
    }
  }
}

void PartyServer::subscribe(const SubscribeRequest& req, Subscription& sub,
                            Outbox& out) {
  const auto& mobs = obs::MonitorPartyObs::instance();
  // Joins the subscriber's trace (tag 2) like party.answer does, so one
  // `wavecli hub` bring-up stitches across processes.
  auto span = obs::Tracer::instance().start(
      "party.subscribe", obs::TraceContext{req.trace_id, req.parent_span_id});
  span.set("party", static_cast<double>(cfg_.party_id));
  span.set("n", static_cast<double>(req.n));
  // A replacing kSubscribe restarts the chain from scratch. A nonzero
  // since_cursor (tag 1) can never name one of our baselines — they are
  // per-subscription and this one is new — so per the DeltaReply fallback
  // rule the chain always opens with a full body; the field is accepted
  // for forward compatibility with server-side persistent baselines.
  sub = Subscription{};
  sub.active = true;
  sub.request_id = req.request_id;
  sub.n = req.n;
  if (req.has_slack) sub.slack = req.slack;
  sub.check = req.check_every_ms > 0
                  ? std::chrono::milliseconds(req.check_every_ms)
                  : cfg_.push_check;
  mobs.subscribes.add();
  push_update(sub, out);
}

void PartyServer::push_update(Subscription& sub, Outbox& out) {
  const auto& mobs = obs::MonitorPartyObs::instance();
  PushUpdate u;
  u.request_id = sub.request_id;
  u.seq = sub.seq + 1;
  u.generation = cfg_.generation;
  u.role = role_;
  bool full = true;
  switch (role_) {
    case PartyRole::kCount: {
      // Same O(change) live encoder as the pull path, but against this
      // subscription's own baseline — two subscribers at different points
      // in their chains never corrupt each other.
      if (sub.cursor != 0 && sub.count_base.valid &&
          recovery::encode_delta_live(*count_, sub.count_base, u.body)) {
        u.base_cursor = sub.cursor;
        full = false;
      } else {
        distributed::CountPartyCheckpoint now = count_->checkpoint();
        u.body = recovery::encode(now);
        recovery::baseline_from_checkpoint(now, sub.count_base);
        u.base_cursor = 0;
      }
      u.items_observed = sub.count_base.cursor;
      sub.pushed_items = sub.count_base.cursor;
      break;
    }
    case PartyRole::kDistinct: {
      distributed::DistinctPartyCheckpoint now = distinct_->checkpoint();
      if (sub.cursor != 0) {
        u.body = recovery::encode_delta(sub.distinct_base, now);
        u.base_cursor = sub.cursor;
        full = false;
      } else {
        u.body = recovery::encode(now);
        u.base_cursor = 0;
      }
      u.items_observed = now.cursor;
      sub.pushed_items = now.cursor;
      sub.distinct_base = std::move(now);
      break;
    }
    case PartyRole::kBasic: {
      const core::Estimate est = basic_->query(sub.n);
      distributed::put_fixed64(u.body,
                               std::bit_cast<std::uint64_t>(est.value));
      distributed::put_varint(u.body, est.exact ? 1 : 0);
      u.items_observed = basic_->items();
      sub.pushed_value = est.value;
      sub.last_change = basic_->change_cursor();
      break;
    }
    case PartyRole::kSum: {
      const core::Estimate est = sum_->query(sub.n);
      distributed::put_fixed64(u.body,
                               std::bit_cast<std::uint64_t>(est.value));
      distributed::put_varint(u.body, est.exact ? 1 : 0);
      u.items_observed = sum_->items();
      sub.pushed_value = est.value;
      sub.last_change = sum_->change_cursor();
      break;
    }
    case PartyRole::kAgg:
      return;  // unreachable: subscribe() rejects the agg role
  }
  u.cursor = sub.cursor + 1;
  sub.cursor = u.cursor;
  sub.seq = u.seq;
  Bytes payload = u.encode();
  mobs.pushes.add();
  mobs.push_bytes.add(kHeaderSize + payload.size());
  if (full) {
    mobs.push_full.add();
  } else {
    mobs.push_delta.add();
  }
  out.push_back(OutFrame{MsgType::kPushUpdate, std::move(payload)});
}

void PartyServer::drift_tick(Subscription& sub, Outbox& out) {
  const auto& mobs = obs::MonitorPartyObs::instance();
  mobs.push_checks.add();
  switch (role_) {
    case PartyRole::kCount: {
      // Count-based windows expire only when items arrive, so the party's
      // item cursor covers window-expiry drift too: a quiescent stream is
      // provably drift-free and the check costs one atomic-ish read.
      const std::uint64_t items = count_->items_observed();
      if (items == sub.pushed_items ||
          static_cast<double>(items - sub.pushed_items) < sub.slack) {
        return;
      }
      push_update(sub, out);
      return;
    }
    case PartyRole::kDistinct: {
      const std::uint64_t items = distinct_->items_observed();
      if (items == sub.pushed_items ||
          static_cast<double>(items - sub.pushed_items) < sub.slack) {
        return;
      }
      push_update(sub, out);
      return;
    }
    case PartyRole::kBasic: {
      // change_cursor gates the (lock + query) estimate walk: if the wave
      // didn't mutate since the last check, the estimate can't have moved.
      const std::uint64_t cc = basic_->change_cursor();
      if (cc == sub.last_change) return;
      sub.last_change = cc;
      const double v = basic_->query(sub.n).value;
      if (std::abs(v - sub.pushed_value) < sub.slack) return;
      push_update(sub, out);
      return;
    }
    case PartyRole::kSum: {
      const std::uint64_t cc = sum_->change_cursor();
      if (cc == sub.last_change) return;
      sub.last_change = cc;
      const double v = sum_->query(sub.n).value;
      if (std::abs(v - sub.pushed_value) < sub.slack) return;
      push_update(sub, out);
      return;
    }
    case PartyRole::kAgg:
      return;
  }
}

PartyServer::ConnAction PartyServer::process_frame(const Frame& frame,
                                                   Subscription& sub,
                                                   Outbox& out) {
  const auto& obs = obs::NetServerObs::instance();
  auto err_out = [&](std::uint64_t request_id, ErrCode code,
                     std::string message) {
    out.push_back(OutFrame{
        MsgType::kErr,
        ErrReply{request_id, code, std::move(message)}.encode()});
  };

  switch (frame.type) {
    case MsgType::kHello: {
      Hello hello;
      if (!Hello::decode(frame.payload, hello)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad hello");
        return ConnAction::kClose;
      }
      out.push_back(OutFrame{MsgType::kHelloAck, hello_ack().encode()});
      break;
    }
    case MsgType::kSnapshotRequest: {
      obs.requests.add();
      SnapshotRequest req;
      if (!SnapshotRequest::decode(frame.payload, req)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad snapshot request");
        return ConnAction::kClose;
      }
      answer(req, out);
      break;
    }
    case MsgType::kMetricsRequest: {
      // Scrape of this process's obs registry. No Hello required: a
      // scrape-only connection (wavecli metrics --connect, the CI schema
      // check) sends this as its first frame.
      MetricsRequest req;
      if (!MetricsRequest::decode(frame.payload, req)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad metrics request");
        return ConnAction::kClose;
      }
      MetricsReply r;
      r.request_id = req.request_id;
      r.generation = cfg_.generation;
      r.format = req.format;
      switch (req.format) {
        case MetricsFormat::kProm:
          r.text = obs::prometheus_text();
          break;
        case MetricsFormat::kJson:
          r.text = obs::json_text();
          break;
        case MetricsFormat::kTrace:
          r.text = obs::trace_text(req.trace_filter);
          break;
      }
      out.push_back(OutFrame{MsgType::kMetricsReply, r.encode()});
      break;
    }
    case MsgType::kHealthRequest: {
      // Liveness probe (src/supervise/). Like kMetricsRequest, no Hello
      // required: a supervisor's probe connection sends this as its
      // first frame and never touches snapshot state.
      HealthRequest req;
      if (!HealthRequest::decode(frame.payload, req)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad health request");
        return ConnAction::kClose;
      }
      out.push_back(
          OutFrame{MsgType::kHealthReply, health_reply(req.request_id).encode()});
      obs.health_probes.add();
      break;
    }
    case MsgType::kSubscribe: {
      obs.requests.add();
      SubscribeRequest req;
      if (!SubscribeRequest::decode(frame.payload, req)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad subscribe request");
        return ConnAction::kClose;
      }
      // Typed rejections keep the connection: the request parsed fine,
      // the framing is intact, and the peer may fall back to polling.
      const char* reject = nullptr;
      if (!cfg_.enable_push) {
        reject = "push subscriptions disabled";
      } else if (role_ == PartyRole::kAgg) {
        reject = "push unsupported for role agg";
      }
      if (reject != nullptr) {
        err_out(req.request_id, ErrCode::kBadRequest, reject);
        break;
      }
      if (req.role != role_) {
        err_out(req.request_id, ErrCode::kWrongRole,
                std::string("party serves role ") + role_name(role_));
        break;
      }
      subscribe(req, sub, out);
      break;
    }
    case MsgType::kUnsubscribe: {
      Unsubscribe req;
      if (!Unsubscribe::decode(frame.payload, req)) {
        obs.frame_errors.add();
        err_out(0, ErrCode::kBadRequest, "bad unsubscribe");
        return ConnAction::kClose;
      }
      // No reply by design: frames are processed in order, so the next
      // request/reply exchange on this connection is unambiguous.
      sub = Subscription{};
      obs::MonitorPartyObs::instance().unsubscribes.add();
      break;
    }
    default: {
      obs.frame_errors.add();
      err_out(0, ErrCode::kBadRequest, "unexpected message type");
      return ConnAction::kClose;
    }
  }
  if (sub.active) drift_tick(sub, out);
  return ConnAction::kKeep;
}

void PartyServer::serve_connection(Socket sock, const std::stop_token& st) {
  const auto& obs = obs::NetServerObs::instance();
  // One Frame for the whole connection: read_frame assigns into it, so a
  // multi-round keep-alive client reuses the payload's high-water capacity
  // instead of allocating per request.
  Frame frame;
  // At most one push subscription per connection; stack-local, so its
  // delta baselines die with the handler thread.
  Subscription sub;
  Outbox out;
  // Any failed write drops the connection: send_all may have delivered a
  // prefix, after which the frame stream is unrecoverable (socket.hpp).
  auto flush = [&](Deadline dl) -> bool {
    for (OutFrame& f : out) {
      if (!write_frame(sock, f.type, f.payload, dl)) return false;
      obs.bytes_sent.add(kHeaderSize + f.payload.size());
    }
    out.clear();
    return true;
  };
  while (!st.stop_requested()) {
    // Idle-wait in short ticks so a stop request is honored promptly even
    // on a silent connection; the io_deadline only applies once bytes
    // flow. A subscribed connection ticks at the subscription's drift
    // cadence instead, and runs the drift check after every wake-up.
    const std::chrono::milliseconds tick =
        sub.active ? std::min(sub.check, std::chrono::milliseconds(100))
                   : std::chrono::milliseconds(100);
    if (!sock.wait_readable(deadline_in(tick))) {
      if (sub.active) {
        out.clear();
        drift_tick(sub, out);
        if (!flush(deadline_in(cfg_.io_deadline))) return;
      }
      continue;
    }
    const Deadline dl = deadline_in(cfg_.io_deadline);
    const ReadStatus rs = read_frame(sock, frame, dl);
    if (rs == ReadStatus::kClosed) return;
    if (rs == ReadStatus::kTimeout) continue;
    if (rs == ReadStatus::kMalformed) {
      obs.frame_errors.add();
      ErrReply err{0, ErrCode::kBadRequest, "malformed frame"};
      const Bytes payload = err.encode();
      if (write_frame(sock, MsgType::kErr, payload, dl)) {
        obs.bytes_sent.add(kHeaderSize + payload.size());
      }
      return;  // framing is lost; drop the connection
    }
    obs.bytes_received.add(kHeaderSize + frame.payload.size());

    out.clear();
    const ConnAction act = process_frame(frame, sub, out);
    if (!flush(dl)) return;
    if (act == ConnAction::kClose) return;
  }
}

}  // namespace waves::net
