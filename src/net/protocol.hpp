// Message bodies for the waves TCP protocol (the payload side of
// net/frame.hpp). Each struct has an encode/decode pair built on the
// distributed::wire varint/fixed64 primitives; decoders are all-or-nothing
// (on failure `out` is untouched) and reject trailing garbage, mirroring
// the wire-codec contract the fuzz tests rely on.
//
// Session shape (client = referee, server = party daemon):
//   client: Hello            -> server: HelloAck (or Err)
//   client: SnapshotRequest  -> server: CountReply | DistinctReply |
//                                        TotalReply | Err
// A connection serves any number of requests; either side may close it at a
// frame boundary. Totals (Scenario 1) cross as fixed64 double bit patterns
// so a networked answer is bit-identical to the in-process one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/agg_wave.hpp"
#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"
#include "distributed/wire.hpp"

namespace waves::net {

using distributed::Bytes;

/// What a party daemon serves: which estimator family it runs.
enum class PartyRole : std::uint8_t {
  kCount = 1,     // Scenario 3 union counting (RandWave snapshots)
  kDistinct = 2,  // distinct values (DistinctSnapshot)
  kBasic = 3,     // Scenario 1 Basic Counting total (DetWave)
  kSum = 4,       // Scenario 1 Sum total (SumWave)
  kAgg = 5,       // exact two-stacks aggregate (agg::AggWave)
};

[[nodiscard]] const char* role_name(PartyRole r);
/// False on an unknown name; `out` untouched.
[[nodiscard]] bool role_from_name(const std::string& name, PartyRole& out);
[[nodiscard]] bool valid_role(std::uint8_t r);

enum class ErrCode : std::uint8_t {
  kBadRequest = 1,  // undecodable payload or unexpected message type
  kWrongRole = 2,   // request's role doesn't match the serving party
  kShutdown = 3,    // server is draining; retry elsewhere
  kInternal = 4,
  kOverloaded = 5,  // connection limit reached; sent before the close
};

struct Hello {
  std::uint64_t client_id = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, Hello& out);
};

struct HelloAck {
  PartyRole role = PartyRole::kCount;
  std::uint64_t party_id = 0;
  std::uint64_t instances = 0;  // median-estimator instances (0 for totals)
  std::uint64_t window = 0;
  std::uint64_t items_observed = 0;
  // The daemon's epoch: bumped (and persisted) on every process start. A
  // referee that sees it change between messages knows the party restarted
  // and anything fetched under the old generation is stale.
  std::uint64_t generation = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, HelloAck& out);
};

struct SnapshotRequest {
  std::uint64_t request_id = 0;
  PartyRole role = PartyRole::kCount;  // client's expectation, server-checked
  std::uint64_t n = 0;                 // window size queried

  // v3 trailing extensions, opt-in per request. The fixed fields may be
  // followed by extension blocks, each a tag varint plus tag-specific
  // payload, tags strictly increasing (canonical: no duplicates, no
  // reordering). Unknown tags are rejected — an extension is only sent to
  // a peer expected to understand it. A v2 request omits all of them, and
  // the original v3 delta form (`1, since_cursor`) parses unchanged as the
  // tag-1 block.
  //
  // Tag 1 — delta: the client accepts a kDeltaReply; since_cursor != 0
  // names the baseline party checkpoint it holds, 0 asks for a full body
  // under the delta framing (mirror bootstrap). Servers may always answer
  // with the v2 reply kinds instead (delta disabled), so a delta_capable
  // client handles either.
  bool delta_capable = false;
  std::uint64_t since_cursor = 0;

  // Tag 2 — trace context: the client's trace id and the span the server's
  // work should hang under. The server tags its handling spans with the
  // same trace id, so a later format=trace scrape stitches one
  // cross-process trace. trace_id == 0 means "no trace" and is not sent.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, SnapshotRequest& out);
};

struct CountReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;  // party epoch when this snapshot was taken
  std::vector<core::RandWaveSnapshot> snapshots;  // one per instance

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, CountReply& out);
};

struct DistinctReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  std::vector<core::DistinctSnapshot> snapshots;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, DistinctReply& out);
};

struct TotalReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  double value = 0.0;  // crosses as a fixed64 bit pattern
  bool exact = false;
  std::uint64_t items_observed = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, TotalReply& out);
};

/// Reply of an agg-role party (exact MIN/MAX/SUM over the window). The
/// aggregate crosses as the int64's fixed64 bit pattern — a double mantissa
/// would round sums past 2^53 — so a networked answer is bit-identical to
/// the in-process one. The op is echoed for client-side validation.
struct AggReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  agg::AggOp op = agg::AggOp::kSum;
  std::int64_t value = 0;
  std::uint64_t items_observed = 0;
  std::uint64_t window = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, AggReply& out);
};

// v3 fast-path reply to a delta_capable SnapshotRequest (count/distinct
// roles). `body` is a recovery party-checkpoint encoding:
//   base_cursor == 0 — self-contained: recovery::encode of the full party
//     checkpoint (mirror bootstrap, stale-cursor fallback, server restart);
//   base_cursor != 0 — recovery::encode_delta against the baseline the
//     client holds under that cursor (matches the request's since_cursor);
//   empty body with base_cursor == cursor == since_cursor — "unchanged":
//     the party ingested nothing since the baseline, reuse it as-is.
// `cursor` names the post-reply baseline; the client echoes it as the next
// request's since_cursor.
struct DeltaReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  PartyRole role = PartyRole::kCount;
  std::uint64_t base_cursor = 0;
  std::uint64_t cursor = 0;
  Bytes body;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, DeltaReply& out);
};

struct ErrReply {
  std::uint64_t request_id = 0;  // 0 when no request could be parsed
  ErrCode code = ErrCode::kInternal;
  std::string message;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, ErrReply& out);
};

// -- Continuous monitoring (src/monitor/) -----------------------------------

/// Opens a push subscription on the serving connection. Fixed fields mirror
/// SnapshotRequest (the subscription is "this role, this window"), followed
/// by the same tagged-extension blocks — tags strictly increasing, unknown
/// tags rejected:
///
///   Tag 1 — delta: since_cursor names a push-chain baseline the client
///     still holds (from a previous subscription on this server). Push
///     baselines are per-subscription, so a server that can't honor it just
///     opens the chain with a full-body update (base_cursor 0) — exactly
///     the DeltaReply fallback rule. 0 = bootstrap.
///   Tag 2 — trace context, as in SnapshotRequest.
///   Tag 3 — slack (new here; SnapshotRequest rejects it): the
///     subscription's drift budget as a fixed64 double bit pattern, plus a
///     varint check cadence in ms (0 = server default). The slack is an
///     absolute threshold in the role's units — items in the window for
///     count/distinct (the party pushes when it has ingested that many
///     items since its last push), estimate units for basic/sum (the party
///     pushes when |estimate - last pushed| reaches it). Must be finite
///     and > 0. Omitted, the server defaults to 1 (push on any change).
///
/// The server answers with the subscription's first kPushUpdate (a full
/// snapshot of the current state — the ack), then pushes on drift until
/// kUnsubscribe, a replacing kSubscribe, or the connection closes.
struct SubscribeRequest {
  std::uint64_t request_id = 0;
  PartyRole role = PartyRole::kCount;
  std::uint64_t n = 0;  // window size monitored

  bool delta_capable = false;  // tag 1
  std::uint64_t since_cursor = 0;

  std::uint64_t trace_id = 0;  // tag 2
  std::uint64_t parent_span_id = 0;

  bool has_slack = false;  // tag 3
  double slack = 0.0;
  std::uint64_t check_every_ms = 0;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, SubscribeRequest& out);
};

/// One unsolicited update on a subscribed connection (party -> hub). `seq`
/// is strictly increasing per subscription starting at 1; a gap or
/// regression means frames were lost and the subscriber must resubscribe.
/// The body reuses the DeltaReply chain semantics for count/distinct
/// (base_cursor 0 = self-contained recovery::encode, else
/// recovery::encode_delta against the cursor the subscriber holds); for
/// basic/sum it is fixed64 estimate bits + varint exact flag — the party's
/// local total, which the hub sums across parties.
struct PushUpdate {
  std::uint64_t request_id = 0;  // echo of the subscribe
  std::uint64_t seq = 0;
  std::uint64_t generation = 0;
  PartyRole role = PartyRole::kCount;
  std::uint64_t items_observed = 0;  // party items at encode time
  std::uint64_t base_cursor = 0;
  std::uint64_t cursor = 0;
  Bytes body;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, PushUpdate& out);
};

/// Ends the connection's active subscription. No reply: the server simply
/// stops pushing, and because frames are processed in order, the next
/// request/reply exchange on the connection is already unambiguous.
struct Unsubscribe {
  std::uint64_t request_id = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, Unsubscribe& out);
};

/// Hub -> watcher body carried in kPushUpdate frames on watcher
/// connections (a watcher subscribed to a MonitorHub, so it decodes this
/// instead of PushUpdate — the schema is chosen by what you subscribed
/// to, like role-dependent snapshot replies). Carries the merged estimate
/// under the hub's quorum rules: status mirrors distributed::QueryStatus
/// (1 ok, 2 degraded, 3 failed), `missing` counts unreachable parties,
/// and error_slack is the kDegraded additive widening.
struct EstimateUpdate {
  std::uint64_t seq = 0;    // strictly increasing per watcher, from 1
  std::uint64_t round = 0;  // hub revision that produced this estimate
  std::uint8_t status = 3;
  double value = 0.0;  // crosses as a fixed64 bit pattern
  bool exact = false;
  std::uint64_t n = 0;
  std::uint64_t missing = 0;
  double error_slack = 0.0;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, EstimateUpdate& out);
};

/// Export format carried by a metrics scrape.
enum class MetricsFormat : std::uint8_t {
  kProm = 1,   // Prometheus text exposition (obs::prometheus_text)
  kJson = 2,   // obs::json_text
  kTrace = 3,  // obs::trace_text — one line per retained span
};

[[nodiscard]] bool valid_metrics_format(std::uint8_t f);

// v3 additive message pair: ask a daemon (or networked referee) for its
// process-local obs registry. No Hello handshake required — a scrape-only
// connection may send this as its first frame, so operators can point
// `wavecli metrics --connect` at any waved without disturbing query
// sessions. Servers answer with kMetricsReply (or kErr on a malformed
// request) and keep the connection open for more requests.
struct MetricsRequest {
  std::uint64_t request_id = 0;
  MetricsFormat format = MetricsFormat::kProm;
  // kTrace only: return just this trace's spans (0 = all retained spans).
  std::uint64_t trace_filter = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, MetricsRequest& out);
};

struct MetricsReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;  // serving process epoch (0 for referees)
  MetricsFormat format = MetricsFormat::kProm;
  std::string text;  // exporter output; bounded by kMaxPayload framing

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, MetricsReply& out);
};

// -- Liveness probing (src/supervise/) --------------------------------------

// v3 additive message pair: ask a daemon whether it is alive and how it is
// doing. Like the metrics pair, no Hello handshake is required — a
// supervisor's probe connection may send this as its first frame — and the
// reply never carries snapshot state, so probing cannot disturb query or
// subscription sessions. Servers answer with kHealthReply (or kErr on a
// malformed request) and keep the connection open for more probes.
struct HealthRequest {
  std::uint64_t request_id = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, HealthRequest& out);
};

struct HealthReply {
  std::uint64_t request_id = 0;
  PartyRole role = PartyRole::kCount;
  std::uint64_t party_id = 0;
  std::uint64_t generation = 0;       // serving process epoch
  std::uint64_t items_observed = 0;   // items ingested so far
  // Milliseconds since the last durable checkpoint save; ~0u64 means "never
  // checkpointed" (no StateStore, or nothing saved yet this generation).
  std::uint64_t checkpoint_age_ms = 0;
  std::uint64_t uptime_ms = 0;  // since the serving process started

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, HealthReply& out);
};

}  // namespace waves::net
