// Message bodies for the waves TCP protocol (the payload side of
// net/frame.hpp). Each struct has an encode/decode pair built on the
// distributed::wire varint/fixed64 primitives; decoders are all-or-nothing
// (on failure `out` is untouched) and reject trailing garbage, mirroring
// the wire-codec contract the fuzz tests rely on.
//
// Session shape (client = referee, server = party daemon):
//   client: Hello            -> server: HelloAck (or Err)
//   client: SnapshotRequest  -> server: CountReply | DistinctReply |
//                                        TotalReply | Err
// A connection serves any number of requests; either side may close it at a
// frame boundary. Totals (Scenario 1) cross as fixed64 double bit patterns
// so a networked answer is bit-identical to the in-process one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"
#include "distributed/wire.hpp"

namespace waves::net {

using distributed::Bytes;

/// What a party daemon serves: which estimator family it runs.
enum class PartyRole : std::uint8_t {
  kCount = 1,     // Scenario 3 union counting (RandWave snapshots)
  kDistinct = 2,  // distinct values (DistinctSnapshot)
  kBasic = 3,     // Scenario 1 Basic Counting total (DetWave)
  kSum = 4,       // Scenario 1 Sum total (SumWave)
};

[[nodiscard]] const char* role_name(PartyRole r);
/// False on an unknown name; `out` untouched.
[[nodiscard]] bool role_from_name(const std::string& name, PartyRole& out);
[[nodiscard]] bool valid_role(std::uint8_t r);

enum class ErrCode : std::uint8_t {
  kBadRequest = 1,  // undecodable payload or unexpected message type
  kWrongRole = 2,   // request's role doesn't match the serving party
  kShutdown = 3,    // server is draining; retry elsewhere
  kInternal = 4,
};

struct Hello {
  std::uint64_t client_id = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, Hello& out);
};

struct HelloAck {
  PartyRole role = PartyRole::kCount;
  std::uint64_t party_id = 0;
  std::uint64_t instances = 0;  // median-estimator instances (0 for totals)
  std::uint64_t window = 0;
  std::uint64_t items_observed = 0;
  // The daemon's epoch: bumped (and persisted) on every process start. A
  // referee that sees it change between messages knows the party restarted
  // and anything fetched under the old generation is stale.
  std::uint64_t generation = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, HelloAck& out);
};

struct SnapshotRequest {
  std::uint64_t request_id = 0;
  PartyRole role = PartyRole::kCount;  // client's expectation, server-checked
  std::uint64_t n = 0;                 // window size queried

  // v3 extension, opt-in per request: when delta_capable the client will
  // accept a kDeltaReply and (if since_cursor != 0) holds a baseline party
  // checkpoint cursored at since_cursor; since_cursor == 0 asks for a full
  // body under the delta framing — the mirror bootstrap. Encoded as two
  // trailing varints a v2 request simply omits; decoders here accept both
  // forms. A server may always answer with the v2 reply kinds instead
  // (delta disabled), so a delta_capable client handles either.
  bool delta_capable = false;
  std::uint64_t since_cursor = 0;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, SnapshotRequest& out);
};

struct CountReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;  // party epoch when this snapshot was taken
  std::vector<core::RandWaveSnapshot> snapshots;  // one per instance

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, CountReply& out);
};

struct DistinctReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  std::vector<core::DistinctSnapshot> snapshots;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, DistinctReply& out);
};

struct TotalReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  double value = 0.0;  // crosses as a fixed64 bit pattern
  bool exact = false;
  std::uint64_t items_observed = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, TotalReply& out);
};

// v3 fast-path reply to a delta_capable SnapshotRequest (count/distinct
// roles). `body` is a recovery party-checkpoint encoding:
//   base_cursor == 0 — self-contained: recovery::encode of the full party
//     checkpoint (mirror bootstrap, stale-cursor fallback, server restart);
//   base_cursor != 0 — recovery::encode_delta against the baseline the
//     client holds under that cursor (matches the request's since_cursor);
//   empty body with base_cursor == cursor == since_cursor — "unchanged":
//     the party ingested nothing since the baseline, reuse it as-is.
// `cursor` names the post-reply baseline; the client echoes it as the next
// request's since_cursor.
struct DeltaReply {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;
  PartyRole role = PartyRole::kCount;
  std::uint64_t base_cursor = 0;
  std::uint64_t cursor = 0;
  Bytes body;

  [[nodiscard]] Bytes encode() const;
  void encode_into(Bytes& out) const;
  [[nodiscard]] static bool decode(const Bytes& in, DeltaReply& out);
};

struct ErrReply {
  std::uint64_t request_id = 0;  // 0 when no request could be parsed
  ErrCode code = ErrCode::kInternal;
  std::string message;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static bool decode(const Bytes& in, ErrReply& out);
};

}  // namespace waves::net
