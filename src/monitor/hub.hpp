// MonitorHub — the referee side of continuous monitoring.
//
// The hub inverts the polling referee: instead of fetching every party each
// round, it opens one push leg per party (Hello -> kSubscribe with the
// party's eps-slack share, tag 3) and keeps a checkpoint mirror per party
// that kPushUpdate frames edit in place — full bodies rebase it, delta
// bodies (the PR-7 codecs) apply to it. Every applied push recomputes the
// merged estimate *through the same combine code the polling referee runs*
// (distributed::union_count / distinct_count over a mirror-backed
// SnapshotSource, with hashes re-derived from the deployment seed), so a
// hub estimate is byte-identical to what a `wavecli query` against the
// same party states returns — the property the loopback test diffs.
//
// Fault model mirrors the polling client's quorum rules: a dead leg marks
// its party missing, which fails the merged estimate closed for
// count/distinct and degrades it (error_slack = missing * n * max_value)
// for basic/sum totals. Legs reconnect with bounded exponential backoff;
// a HelloAck carrying a new generation means the party restarted, so the
// mirror is dropped and the subscription rebases on the full initial push
// (epoch-aware resync — the "HUB RESYNC" event operators grep for).
//
// Fan-out: the hub runs its own listener speaking the same three frames to
// any number of `wavecli watch` subscribers. Watcher connections carry
// EstimateUpdate bodies in kPushUpdate frames — the merged estimate, not
// checkpoints — pushed whenever the hub's revision advances, so N watchers
// cost one recompute plus N small frames per change and *zero* traffic
// while the streams are quiescent.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"
#include "distributed/party.hpp"
#include "distributed/referee.hpp"
#include "monitor/slack.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/io_model.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace waves::monitor {

struct HubConfig {
  std::vector<net::Endpoint> parties;
  net::PartyRole role = net::PartyRole::kCount;
  std::uint64_t n = 0;  // monitored window
  // Global staleness budget, split across parties per `split` (slack.hpp).
  double eps = 0.05;
  SlackSplit split = SlackSplit::kUniform;
  std::uint64_t max_value = 1;  // sum-role slack + degraded widening
  // Party-side drift-check cadence carried in the subscription (tag 3).
  std::chrono::milliseconds check_every{25};
  std::chrono::milliseconds io_deadline{2000};
  // Leg reconnect backoff (bounded exponential, reset on a live push).
  std::chrono::milliseconds reconnect_base{50};
  std::chrono::milliseconds reconnect_max{1000};
  // Per-leg circuit breaker: `breaker_threshold` consecutive failed
  // connect/subscribe cycles trip it, an open leg stops hammering the
  // endpoint and retries one probe cycle per cooldown (the quorum math
  // already owns the missing party), a successful probe closes it. Counted
  // in the waves_monitor_hub_breaker_* families.
  bool breaker_enabled = true;
  int breaker_threshold = 5;
  std::chrono::milliseconds breaker_cooldown{1000};
  std::uint64_t client_id = 0;
  // Watcher fan-out listener; port 0 binds ephemeral (watch_port()).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t max_watchers = 64;
  // Per-watcher write budget: an EstimateUpdate push that cannot complete
  // within it evicts the watcher with a typed kOverloaded close (counted
  // in waves_monitor_hub_watcher_evicted_total). Watchers fan out on their
  // own threads, so the budget bounds how long one stalled peer can hold
  // its thread — the healthy watchers' fan-out never waits on it.
  std::chrono::milliseconds watcher_write_budget{250};
  // Kernel send-buffer cap (SO_SNDBUF) for each accepted watcher socket;
  // 0 keeps the OS default. Bounding it makes the write budget an effective
  // backpressure bound — with the default auto-tuned buffer the kernel
  // absorbs megabytes of unread pushes before a write ever blocks.
  int watcher_sndbuf = 0;
  // Watcher fan-out I/O core. kEpoll (the Linux default) multiplexes every
  // watcher on one event loop: pushes go through non-blocking write queues
  // with latest-wins estimate coalescing, and the write budget is a timer
  // on the stalled queue instead of a blocked thread. kThreads keeps the
  // original thread-per-watcher core. Party legs are threads either way —
  // there are only ever a handful, and they block in read_frame by design.
  net::IoModel io_model = net::default_io_model();
  // Count/distinct merge parameters — must match the deployment (stored
  // coins: the hub re-derives the shared hashes from the seed, exactly
  // like NetworkCountSource).
  core::RandWave::Params count_params{};
  core::DistinctWave::Params distinct_params{};
  int instances = 0;
  std::uint64_t shared_seed = 0;
  // Operator-visible lifecycle events ("HUB RESYNC party=2 generation=7").
  // Called from leg threads, serialized by the hub; may be empty.
  std::function<void(const std::string&)> on_event;
};

/// Published merged estimate; `revision` bumps on every recompute, so a
/// consumer can wait for change instead of polling.
struct HubEstimate {
  std::uint64_t revision = 0;
  distributed::QueryStatus status = distributed::QueryStatus::kFailed;
  double value = 0.0;
  bool exact = false;
  std::uint64_t missing = 0;
  double error_slack = 0.0;
};

class MonitorHub {
 public:
  explicit MonitorHub(HubConfig cfg);
  ~MonitorHub();

  MonitorHub(const MonitorHub&) = delete;
  MonitorHub& operator=(const MonitorHub&) = delete;

  /// Bind the watcher listener and start the party legs + accept loop.
  /// False if the bind fails.
  [[nodiscard]] bool start();
  /// Stop all legs and watchers, close the listener. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t watch_port() const noexcept {
    return listener_.port();
  }
  [[nodiscard]] const HubConfig& config() const noexcept { return cfg_; }

  /// Current merged estimate (cheap copy under the estimate lock).
  [[nodiscard]] HubEstimate estimate() const;
  /// Block until the revision exceeds `after` or `timeout` passes; returns
  /// the estimate either way.
  [[nodiscard]] HubEstimate wait_revision(
      std::uint64_t after, std::chrono::milliseconds timeout) const;

 private:
  friend class MirrorCountSource;
  friend class MirrorDistinctSource;

  /// One party's pushed state: the checkpoint mirror the push chain edits,
  /// plus the derived-snapshot cache keyed (cursor, n) so quiescent
  /// recomputes rebuild nothing.
  struct PartyMirror {
    bool live = false;
    std::uint64_t generation = 0;
    std::uint64_t cursor = 0;  // push-chain cursor held (0 = no state)
    std::uint64_t seq = 0;     // last push seq applied
    distributed::CountPartyCheckpoint count_base;
    distributed::CountPartyCheckpoint count_scratch;
    distributed::DistinctPartyCheckpoint distinct_base;
    distributed::DistinctPartyCheckpoint distinct_scratch;
    double value = 0.0;  // basic/sum local total
    bool exact = false;
    // Snapshot cache (count/distinct).
    bool snap_valid = false;
    std::uint64_t snap_cursor = 0;
    std::vector<core::RandWaveSnapshot> count_snaps;
    std::vector<core::DistinctSnapshot> distinct_snaps;
  };

  void leg_loop(std::size_t i, const std::stop_token& st);
  /// Fold one decoded push into mirror i. False (with a diagnostic) on any
  /// cursor/codec mismatch — the leg drops and resubscribes.
  [[nodiscard]] bool apply_push(std::size_t i, const net::PushUpdate& u,
                                std::string& err);
  void set_leg_down(std::size_t i);
  /// Re-derive the merged estimate from the mirrors and publish it.
  void recompute();
  void watch_accept_loop(const std::stop_token& st);
  void serve_watcher(net::Socket sock, const std::stop_token& st);
  void reap_watchers();
  void emit(const std::string& line);
  // Event-loop watcher core (hub_loop.cpp); no-ops under kThreads.
  [[nodiscard]] bool watch_start();
  void watch_stop();
  void watch_notify();

  HubConfig cfg_;
  SlackBudget budget_;
  // Hash oracles: never-fed reference parties built from the deployment
  // seed (stored coins), exactly like NetworkCountSource's.
  std::unique_ptr<distributed::CountParty> count_ref_;
  std::unique_ptr<distributed::DistinctParty> distinct_ref_;

  mutable std::mutex mu_;  // mirrors
  std::vector<PartyMirror> mirrors_;

  mutable std::mutex est_mu_;
  mutable std::condition_variable est_cv_;
  HubEstimate est_;

  std::mutex event_mu_;

  net::Listener listener_;
  std::vector<std::jthread> legs_;
  std::jthread watch_thread_;
  struct Watcher {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex watchers_mu_;
  std::vector<Watcher> watchers_;

  // Event-loop watcher core, live only under IoModel::kEpoll. Opaque here
  // (defined in hub_loop.cpp) with a custom deleter so this header needs
  // no event-loop types.
  struct WatchCore;
  struct WatchCoreDeleter {
    void operator()(WatchCore* core) const;
  };
  std::unique_ptr<WatchCore, WatchCoreDeleter> watch_core_;
};

}  // namespace waves::monitor
