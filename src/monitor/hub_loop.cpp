// MonitorHub's event-loop watcher core (HubConfig::io_model == kEpoll):
// one EventLoop thread owns every watcher connection, so thousands of
// `wavecli watch` subscribers cost one resident thread instead of one
// thread each. Protocol work per frame is a handful of varint decodes and
// a mutex-guarded estimate copy — cheap enough to run on the loop thread
// directly, so unlike PartyServer's core there is no worker pool.
//
// Fan-out is revision-driven with latest-wins coalescing: recompute()
// posts one (coalesced) notify onto the loop, which walks the subscribed
// watchers and enqueues the *current* estimate for any watcher whose
// write queue is empty. A watcher mid-stall skips the round; when its
// queue drains, pump() re-reads the estimate and sends the newest
// revision — intermediate revisions are never queued, so a slow watcher's
// memory footprint stays one frame no matter how fast the hub recomputes.
//
// Backpressure mirrors the threads core's contract: a write queue that
// stays non-empty past watcher_write_budget evicts the watcher with a
// typed kOverloaded close (best-effort — the err frame only lands if the
// socket has room), counted in waves_monitor_hub_watcher_evicted_total.
#include <cstring>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "monitor/hub.hpp"
#include "net/event_loop.hpp"
#include "obs/monitor_obs.hpp"

namespace waves::monitor {

namespace {

using distributed::Bytes;

// Queued-write byte cap per watcher. Coalescing keeps the queue at one
// estimate frame in steady state; the cap is the hard stop if a peer
// stalls mid-ack while protocol replies pile up.
constexpr std::size_t kMaxWatcherQueueBytes = std::size_t{64} << 10;

}  // namespace

struct MonitorHub::WatchCore {
  explicit WatchCore(MonitorHub& owner) : hub(owner) {}

  struct Watcher {
    net::Socket sock;
    // -- read side --
    std::vector<std::uint8_t> inbuf;
    std::size_t inpos = 0;  // consumed prefix of inbuf
    bool peer_eof = false;
    bool read_enabled = true;
    // -- subscription --
    bool subscribed = false;
    std::uint64_t seq = 0;            // per-watcher push counter (no gaps)
    std::uint64_t sent_revision = 0;  // newest revision on the wire
    // -- write side --
    std::deque<Bytes> writeq;  // fully framed buffers
    std::size_t wq_head = 0;   // sent prefix of writeq.front()
    std::size_t wq_bytes = 0;
    bool want_write = false;
    bool close_after_flush = false;
    bool counted = false;  // counts against max_watchers (not rejected)
    bool closed = false;
    std::chrono::milliseconds write_budget{250};
    net::EventLoop::TimerId read_timer = 0;
    net::EventLoop::TimerId write_timer = 0;
  };

  MonitorHub& hub;
  net::EventLoop loop;
  std::jthread thread;
  std::unordered_map<int, std::shared_ptr<Watcher>> conns;
  std::size_t serving = 0;  // counted watchers (the max_watchers set)
  std::atomic<bool> notify_pending{false};
  std::vector<std::uint8_t> rdbuf = std::vector<std::uint8_t>(16 * 1024);

  // ---- lifecycle ----

  bool start() {
    if (!loop.ok()) return false;
    const bool ok =
        loop.add_fd(hub.listener_.fd(), /*read=*/true, /*write=*/false,
                    [this](std::uint32_t) { on_accept(); });
    if (!ok) return false;
    thread = std::jthread([this](const std::stop_token& st) { loop.run(st); });
    return true;
  }

  // ---- accept path ----

  void on_accept() {
    const auto& mobs = obs::MonitorHubObs::instance();
    while (true) {
      net::Socket s = hub.listener_.try_accept();
      if (!s.valid()) break;
      if (hub.cfg_.watcher_sndbuf > 0) {
        ::setsockopt(s.fd(), SOL_SOCKET, SO_SNDBUF, &hub.cfg_.watcher_sndbuf,
                     sizeof hub.cfg_.watcher_sndbuf);
      }
      mobs.watchers.add();
      auto w = std::make_shared<Watcher>();
      w->sock = std::move(s);
      w->write_budget = hub.cfg_.watcher_write_budget;
      if (serving >= hub.cfg_.max_watchers) {
        mobs.watcher_rejected.add();
        const net::ErrReply err{0, net::ErrCode::kOverloaded,
                                "watcher limit reached"};
        w->close_after_flush = true;
        w->write_budget = std::chrono::milliseconds(100);
        if (!register_watcher(w)) continue;
        enqueue_frame(w, net::MsgType::kErr, err.encode());
        flush_writes(w);
        continue;
      }
      w->counted = true;
      if (!register_watcher(w)) continue;
      ++serving;
    }
  }

  [[nodiscard]] bool register_watcher(const std::shared_ptr<Watcher>& w) {
    const int fd = w->sock.fd();
    const bool ok =
        loop.add_fd(fd, /*read=*/!w->close_after_flush, /*write=*/false,
                    [this, fd](std::uint32_t mask) { on_event(fd, mask); });
    if (!ok) return false;
    w->read_enabled = !w->close_after_flush;
    conns.emplace(fd, w);
    return true;
  }

  // ---- event dispatch ----

  void on_event(int fd, std::uint32_t mask) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    std::shared_ptr<Watcher> w = it->second;
    if ((mask & net::EventLoop::kReadable) != 0) {
      on_readable(w);
      if (w->closed) return;
    }
    if ((mask & net::EventLoop::kWritable) != 0) {
      pump(w);
      if (w->closed) return;
    }
    if ((mask & net::EventLoop::kError) != 0 &&
        (mask & (net::EventLoop::kReadable | net::EventLoop::kWritable)) ==
            0) {
      close_watcher(w);
    }
  }

  void on_readable(const std::shared_ptr<Watcher>& w) {
    while (true) {
      const ssize_t n = ::recv(w->sock.fd(), rdbuf.data(), rdbuf.size(), 0);
      if (n > 0) {
        w->inbuf.insert(w->inbuf.end(), rdbuf.data(), rdbuf.data() + n);
        if (static_cast<std::size_t>(n) < rdbuf.size()) break;
        continue;
      }
      if (n == 0) {
        w->peer_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_watcher(w);  // hard socket error
      return;
    }

    while (!w->closed && !w->close_after_flush &&
           w->inbuf.size() - w->inpos >= net::kHeaderSize) {
      net::MsgType type{};
      std::uint32_t len = 0;
      if (!net::parse_header(w->inbuf.data() + w->inpos, type, len)) {
        send_err(w, 0, net::ErrCode::kBadRequest, "malformed frame");
        begin_close(w);
        break;
      }
      if (w->inbuf.size() - w->inpos < net::kHeaderSize + len) break;
      Bytes payload(w->inbuf.data() + w->inpos + net::kHeaderSize,
                    w->inbuf.data() + w->inpos + net::kHeaderSize + len);
      w->inpos += net::kHeaderSize + len;
      process_frame(w, type, payload);
    }
    if (w->closed) return;
    if (w->inpos == w->inbuf.size()) {
      w->inbuf.clear();
      w->inpos = 0;
    } else if (w->inpos > rdbuf.size()) {
      w->inbuf.erase(w->inbuf.begin(),
                     w->inbuf.begin() + static_cast<std::ptrdiff_t>(w->inpos));
      w->inpos = 0;
    }

    // Slow-loris guard: a partial frame must complete within io_deadline.
    const bool partial = w->inbuf.size() > w->inpos;
    if (partial && w->read_timer == 0) {
      std::weak_ptr<Watcher> wk = w;
      w->read_timer = loop.arm_timer(hub.cfg_.io_deadline, [this, wk] {
        if (auto ww = wk.lock(); ww && !ww->closed) {
          ww->read_timer = 0;
          close_watcher(ww);
        }
      });
    } else if (!partial && w->read_timer != 0) {
      loop.cancel_timer(w->read_timer);
      w->read_timer = 0;
    }

    if (w->peer_eof && !w->close_after_flush) {
      // The threads core closes as soon as a read sees EOF; writes there
      // are synchronous, so nothing is ever in flight at that point.
      close_watcher(w);
      return;
    }
    pump(w);
  }

  // ---- protocol (loop thread; every handler is a few varint decodes) ----

  void process_frame(const std::shared_ptr<Watcher>& w, net::MsgType type,
                     const Bytes& payload) {
    switch (type) {
      case net::MsgType::kHello: {
        net::Hello h;
        if (!net::Hello::decode(payload, h)) {
          send_err(w, 0, net::ErrCode::kBadRequest, "bad hello");
          begin_close(w);
          return;
        }
        net::HelloAck ack;
        ack.role = hub.cfg_.role;
        ack.party_id = 0;
        ack.instances =
            static_cast<std::uint64_t>(std::max(hub.cfg_.instances, 0));
        ack.window = hub.cfg_.n;
        ack.items_observed = 0;
        ack.generation = 0;
        enqueue_frame(w, net::MsgType::kHelloAck, ack.encode());
        return;
      }
      case net::MsgType::kSubscribe: {
        net::SubscribeRequest req;
        if (!net::SubscribeRequest::decode(payload, req)) {
          send_err(w, 0, net::ErrCode::kBadRequest, "bad subscribe");
          begin_close(w);
          return;
        }
        if (req.role != hub.cfg_.role) {
          send_err(w, req.request_id, net::ErrCode::kWrongRole,
                   "hub monitors a different role");
          return;
        }
        if (req.n != hub.cfg_.n) {
          send_err(w, req.request_id, net::ErrCode::kBadRequest,
                   "hub monitors a different window");
          return;
        }
        w->subscribed = true;
        // The current estimate is the subscription's ack, whatever its
        // revision — matching serve_watcher.
        enqueue_estimate(w, hub.estimate());
        return;
      }
      case net::MsgType::kUnsubscribe: {
        net::Unsubscribe u;
        if (!net::Unsubscribe::decode(payload, u)) {
          send_err(w, 0, net::ErrCode::kBadRequest, "bad unsubscribe");
          begin_close(w);
          return;
        }
        w->subscribed = false;
        return;
      }
      default:
        send_err(w, 0, net::ErrCode::kBadRequest,
                 "unsupported message for a monitor hub");
        begin_close(w);
        return;
    }
  }

  void send_err(const std::shared_ptr<Watcher>& w, std::uint64_t request_id,
                net::ErrCode code, const char* msg) {
    enqueue_frame(w, net::MsgType::kErr,
                  net::ErrReply{request_id, code, msg}.encode());
  }

  void begin_close(const std::shared_ptr<Watcher>& w) {
    w->close_after_flush = true;
    set_read_enabled(w, false);
  }

  // ---- fan-out ----

  void fan_out() {
    const HubEstimate e = hub.estimate();
    std::vector<std::shared_ptr<Watcher>> snapshot;
    snapshot.reserve(conns.size());
    for (auto& [fd, w] : conns) snapshot.push_back(w);
    for (auto& w : snapshot) {
      if (w->closed || w->close_after_flush || !w->subscribed) continue;
      if (e.revision <= w->sent_revision) continue;
      // A stalled watcher skips the round; pump() picks up the newest
      // revision when (if) its queue drains — latest wins.
      if (!w->writeq.empty()) continue;
      enqueue_estimate(w, e);
      pump(w);
    }
  }

  void enqueue_estimate(const std::shared_ptr<Watcher>& w,
                        const HubEstimate& e) {
    const auto& mobs = obs::MonitorHubObs::instance();
    net::EstimateUpdate up;
    up.seq = ++w->seq;
    up.round = e.revision;
    up.status = e.status == distributed::QueryStatus::kOk ? 1
                : e.status == distributed::QueryStatus::kDegraded ? 2
                                                                  : 3;
    up.value = e.value;
    up.exact = e.exact;
    up.n = hub.cfg_.n;
    up.missing = e.missing;
    up.error_slack = e.error_slack;
    Bytes payload;
    up.encode_into(payload);
    w->sent_revision = e.revision;
    mobs.watcher_updates.add();
    enqueue_frame(w, net::MsgType::kPushUpdate, payload);
  }

  // ---- write path ----

  void enqueue_frame(const std::shared_ptr<Watcher>& w, net::MsgType type,
                     const Bytes& payload) {
    const auto header = net::put_header(
        type, static_cast<std::uint32_t>(payload.size()));
    Bytes buf(net::kHeaderSize + payload.size());
    std::memcpy(buf.data(), header.data(), net::kHeaderSize);
    if (!payload.empty()) {
      std::memcpy(buf.data() + net::kHeaderSize, payload.data(),
                  payload.size());
    }
    w->wq_bytes += buf.size();
    w->writeq.push_back(std::move(buf));
    if (w->wq_bytes > kMaxWatcherQueueBytes) evict(w);
  }

  /// Flush, then keep the subscribed watcher current: whenever the queue
  /// fully drains, re-read the estimate and send the newest unseen
  /// revision. Terminates because each lap advances sent_revision.
  void pump(const std::shared_ptr<Watcher>& w) {
    while (true) {
      flush_writes(w);
      if (w->closed || w->close_after_flush || !w->writeq.empty()) return;
      if (!w->subscribed) return;
      const HubEstimate e = hub.estimate();
      if (e.revision <= w->sent_revision) return;
      enqueue_estimate(w, e);
    }
  }

  void flush_writes(const std::shared_ptr<Watcher>& w) {
    if (w->closed) return;
    while (!w->writeq.empty()) {
      const Bytes& front = w->writeq.front();
      const ssize_t n = ::send(w->sock.fd(), front.data() + w->wq_head,
                               front.size() - w->wq_head, MSG_NOSIGNAL);
      if (n > 0) {
        w->wq_head += static_cast<std::size_t>(n);
        w->wq_bytes -= static_cast<std::size_t>(n);
        if (w->wq_head == front.size()) {
          w->writeq.pop_front();
          w->wq_head = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_watcher(w);
      return;
    }
    if (w->writeq.empty()) {
      if (w->write_timer != 0) {
        loop.cancel_timer(w->write_timer);
        w->write_timer = 0;
      }
      set_want_write(w, false);
      if (w->close_after_flush) close_watcher(w);
      return;
    }
    // Residue: arm EPOLLOUT and the write budget. A queue still non-empty
    // when the budget fires is a stalled watcher — evicted, not waited on.
    set_want_write(w, true);
    if (w->write_timer == 0) {
      std::weak_ptr<Watcher> wk = w;
      w->write_timer = loop.arm_timer(w->write_budget, [this, wk] {
        auto ww = wk.lock();
        if (!ww || ww->closed) return;
        ww->write_timer = 0;
        if (ww->close_after_flush) {
          close_watcher(ww);  // courtesy flush expired; just drop it
          return;
        }
        evict(ww);
      });
    }
  }

  /// Typed eviction: count it, best-effort the kOverloaded err (it only
  /// lands if the socket has room — same "when the err frame still fit"
  /// contract as the threads core), close.
  void evict(const std::shared_ptr<Watcher>& w) {
    obs::MonitorHubObs::instance().watcher_evicted.add();
    const net::ErrReply err{0, net::ErrCode::kOverloaded,
                            "watcher too slow; evicted"};
    const Bytes payload = err.encode();
    const auto header = net::put_header(
        net::MsgType::kErr, static_cast<std::uint32_t>(payload.size()));
    Bytes buf(net::kHeaderSize + payload.size());
    std::memcpy(buf.data(), header.data(), net::kHeaderSize);
    std::memcpy(buf.data() + net::kHeaderSize, payload.data(),
                payload.size());
    (void)::send(w->sock.fd(), buf.data(), buf.size(), MSG_NOSIGNAL);
    close_watcher(w);
  }

  // ---- interest management ----

  void set_want_write(const std::shared_ptr<Watcher>& w, bool want) {
    if (w->want_write == want) return;
    w->want_write = want;
    (void)loop.mod_fd(w->sock.fd(), w->read_enabled, want);
  }

  void set_read_enabled(const std::shared_ptr<Watcher>& w, bool r) {
    if (w->read_enabled == r) return;
    w->read_enabled = r;
    (void)loop.mod_fd(w->sock.fd(), r, w->want_write);
  }

  // ---- teardown ----

  void close_watcher(const std::shared_ptr<Watcher>& w) {
    if (w->closed) return;
    w->closed = true;
    if (w->read_timer != 0) loop.cancel_timer(w->read_timer);
    if (w->write_timer != 0) loop.cancel_timer(w->write_timer);
    w->read_timer = w->write_timer = 0;
    loop.del_fd(w->sock.fd());
    conns.erase(w->sock.fd());
    if (w->counted) --serving;
    w->sock.close();
  }
};

void MonitorHub::WatchCoreDeleter::operator()(WatchCore* core) const {
  delete core;
}

bool MonitorHub::watch_start() {
  watch_core_ =
      std::unique_ptr<WatchCore, WatchCoreDeleter>(new WatchCore(*this));
  if (watch_core_->start()) return true;
  watch_core_.reset();
  return false;
}

void MonitorHub::watch_stop() {
  if (watch_core_ == nullptr) return;
  if (watch_core_->thread.joinable()) {
    watch_core_->thread.request_stop();
    watch_core_->loop.wake();
    watch_core_->thread.join();
  }
  watch_core_.reset();
}

void MonitorHub::watch_notify() {
  if (watch_core_ == nullptr) return;
  // Coalesced: many recomputes between loop wakeups collapse into one
  // fan-out of the newest estimate (latest wins per watcher anyway).
  if (watch_core_->notify_pending.exchange(true)) return;
  watch_core_->loop.post([core = watch_core_.get()] {
    core->notify_pending.store(false);
    core->fan_out();
  });
}

}  // namespace waves::monitor
