#include "monitor/hub.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "distributed/wire.hpp"
#include "obs/monitor_obs.hpp"
#include "obs/net_obs.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/delta.hpp"

namespace waves::monitor {

using distributed::Bytes;

// Mirror-backed snapshot sources: the same SnapshotSource contract the TCP
// and in-process paths implement, so recompute() runs the identical
// union/median code — that, plus snapshots derived by the same
// snapshot_from_checkpoint codepath the polling client uses, is what makes
// a hub estimate byte-identical to a poll of the same party states.
// collect() runs under mu_ (recompute holds it) and refreshes each live
// mirror's derived-snapshot cache only when its push-chain cursor moved.
class MirrorCountSource final : public distributed::CountSnapshotSource {
 public:
  explicit MirrorCountSource(MonitorHub& hub) : hub_(hub) {}
  [[nodiscard]] std::size_t party_count() const override {
    return hub_.mirrors_.size();
  }
  [[nodiscard]] int instances() const override { return hub_.cfg_.instances; }
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override {
    return hub_.count_ref_->instance(instance).hash();
  }
  [[nodiscard]] const char* transport() const override { return "push"; }
  std::vector<std::vector<core::RandWaveSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing,
      distributed::WireStats* stats, distributed::CollectStats& info) override {
    (void)stats;
    (void)info;
    std::vector<std::vector<core::RandWaveSnapshot>> out;
    out.reserve(hub_.mirrors_.size());
    for (std::size_t i = 0; i < hub_.mirrors_.size(); ++i) {
      MonitorHub::PartyMirror& m = hub_.mirrors_[i];
      if (!m.live) {
        missing.push_back(i);
        out.emplace_back();
        continue;
      }
      if (!m.snap_valid || m.snap_cursor != m.cursor) {
        m.count_snaps.resize(m.count_base.waves.size());
        for (std::size_t k = 0; k < m.count_base.waves.size(); ++k) {
          core::snapshot_from_checkpoint_into(m.count_base.waves[k], n,
                                              m.count_snaps[k]);
        }
        m.snap_valid = true;
        m.snap_cursor = m.cursor;
      }
      out.push_back(m.count_snaps);
    }
    return out;
  }

 private:
  MonitorHub& hub_;
};

class MirrorDistinctSource final : public distributed::DistinctSnapshotSource {
 public:
  explicit MirrorDistinctSource(MonitorHub& hub) : hub_(hub) {}
  [[nodiscard]] std::size_t party_count() const override {
    return hub_.mirrors_.size();
  }
  [[nodiscard]] int instances() const override { return hub_.cfg_.instances; }
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override {
    return hub_.distinct_ref_->instance(instance).hash();
  }
  [[nodiscard]] const char* transport() const override { return "push"; }
  std::vector<std::vector<core::DistinctSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing,
      distributed::WireStats* stats, distributed::CollectStats& info) override {
    (void)stats;
    (void)info;
    const std::uint64_t window = hub_.cfg_.distinct_params.window;
    std::vector<std::vector<core::DistinctSnapshot>> out;
    out.reserve(hub_.mirrors_.size());
    for (std::size_t i = 0; i < hub_.mirrors_.size(); ++i) {
      MonitorHub::PartyMirror& m = hub_.mirrors_[i];
      if (!m.live) {
        missing.push_back(i);
        out.emplace_back();
        continue;
      }
      if (!m.snap_valid || m.snap_cursor != m.cursor) {
        m.distinct_snaps.resize(m.distinct_base.waves.size());
        for (std::size_t k = 0; k < m.distinct_base.waves.size(); ++k) {
          core::snapshot_from_checkpoint_into(m.distinct_base.waves[k], n,
                                              window, m.distinct_snaps[k]);
        }
        m.snap_valid = true;
        m.snap_cursor = m.cursor;
      }
      out.push_back(m.distinct_snaps);
    }
    return out;
  }

 private:
  MonitorHub& hub_;
};

MonitorHub::MonitorHub(HubConfig cfg)
    : cfg_(std::move(cfg)),
      budget_{cfg_.eps, cfg_.parties.size(), cfg_.split} {
  if (cfg_.role == net::PartyRole::kCount && cfg_.instances > 0) {
    count_ref_ = std::make_unique<distributed::CountParty>(
        cfg_.count_params, cfg_.instances, cfg_.shared_seed);
  }
  if (cfg_.role == net::PartyRole::kDistinct && cfg_.instances > 0) {
    distinct_ref_ = std::make_unique<distributed::DistinctParty>(
        cfg_.distinct_params, cfg_.instances, cfg_.shared_seed);
  }
  mirrors_.resize(cfg_.parties.size());
}

MonitorHub::~MonitorHub() { stop(); }

bool MonitorHub::start() {
  if (!listener_.listen_on(cfg_.host, cfg_.port)) return false;
  obs::NetLoopObs::instance().io_model.set(
      static_cast<double>(static_cast<std::uint8_t>(cfg_.io_model)));
  if (cfg_.io_model == net::IoModel::kEpoll) {
    if (!watch_start()) {
      listener_.close();
      return false;
    }
  } else {
    watch_thread_ = std::jthread(
        [this](const std::stop_token& st) { watch_accept_loop(st); });
  }
  legs_.reserve(cfg_.parties.size());
  for (std::size_t i = 0; i < cfg_.parties.size(); ++i) {
    legs_.emplace_back(
        [this, i](const std::stop_token& st) { leg_loop(i, st); });
  }
  return true;
}

void MonitorHub::stop() {
  for (auto& leg : legs_) leg.request_stop();
  if (watch_thread_.joinable()) watch_thread_.request_stop();
  {
    std::lock_guard lk(watchers_mu_);
    for (auto& w : watchers_) w.thread.request_stop();
  }
  est_cv_.notify_all();
  legs_.clear();  // joins — after this no thread calls watch_notify()
  watch_stop();
  if (watch_thread_.joinable()) watch_thread_.join();
  {
    std::lock_guard lk(watchers_mu_);
    watchers_.clear();  // joins
  }
  listener_.close();
}

HubEstimate MonitorHub::estimate() const {
  std::lock_guard lk(est_mu_);
  return est_;
}

HubEstimate MonitorHub::wait_revision(std::uint64_t after,
                                      std::chrono::milliseconds timeout) const {
  std::unique_lock lk(est_mu_);
  est_cv_.wait_for(lk, timeout, [&] { return est_.revision > after; });
  return est_;
}

void MonitorHub::emit(const std::string& line) {
  if (!cfg_.on_event) return;
  std::lock_guard lk(event_mu_);
  cfg_.on_event(line);
}

void MonitorHub::set_leg_down(std::size_t i) {
  bool changed = false;
  {
    std::lock_guard lk(mu_);
    if (mirrors_[i].live) {
      mirrors_[i].live = false;
      changed = true;
    }
  }
  // Quorum rules apply immediately: count/distinct fail closed, totals
  // degrade. Only publish when the leg was actually contributing.
  if (changed) recompute();
}

void MonitorHub::recompute() {
  const obs::MonitorHubObs& mobs = obs::MonitorHubObs::instance();
  mobs.recomputes.add();
  HubEstimate next;
  {
    std::lock_guard lk(mu_);
    // Pushes from different parties land at different instants, so the
    // mirrors sit at different stream positions between push waves. The
    // Scenario-3 positionwise union is only defined over aligned streams
    // (referee_union_count asserts it), so with every leg live the merge
    // waits for the laggards' pushes to realign the mirrors; the standing
    // estimate keeps serving reads meanwhile — exactly the staleness the
    // slack shares budget for. A dead leg skips the union math entirely
    // (fail closed), so misalignment can't block that publication.
    if (cfg_.role == net::PartyRole::kCount ||
        cfg_.role == net::PartyRole::kDistinct) {
      bool all_live = true;
      bool aligned = true;
      std::uint64_t pos = 0;
      bool first = true;
      for (const PartyMirror& m : mirrors_) {
        if (!m.live) {
          all_live = false;
          break;
        }
        const std::uint64_t c = cfg_.role == net::PartyRole::kCount
                                    ? m.count_base.cursor
                                    : m.distinct_base.cursor;
        if (first) {
          pos = c;
          first = false;
        } else if (c != pos) {
          aligned = false;
        }
      }
      if (all_live && !aligned) return;
    }
    switch (cfg_.role) {
      case net::PartyRole::kCount: {
        MirrorCountSource src(*this);
        const distributed::QueryResult qr =
            distributed::union_count(src, cfg_.n);
        next.status = qr.status;
        next.value = qr.estimate.value;
        next.exact = qr.estimate.exact;
        next.missing = qr.missing.size();
        next.error_slack = qr.error_slack;
        break;
      }
      case net::PartyRole::kDistinct: {
        MirrorDistinctSource src(*this);
        const distributed::QueryResult qr =
            distributed::distinct_count(src, cfg_.n);
        next.status = qr.status;
        next.value = qr.estimate.value;
        next.exact = qr.estimate.exact;
        next.missing = qr.missing.size();
        next.error_slack = qr.error_slack;
        break;
      }
      case net::PartyRole::kBasic:
      case net::PartyRole::kSum: {
        // Scenario-1 quorum rules, as in net::total_query: responders sum,
        // missing parties widen the error by what they could contribute.
        double sum = 0.0;
        bool exact = true;
        std::uint64_t missing = 0;
        for (const PartyMirror& m : mirrors_) {
          if (!m.live) {
            ++missing;
            continue;
          }
          sum += m.value;
          exact = exact && m.exact;
        }
        next.missing = missing;
        if (missing == mirrors_.size()) {
          next.status = distributed::QueryStatus::kFailed;
        } else if (missing > 0) {
          next.status = distributed::QueryStatus::kDegraded;
          next.value = sum;
          next.exact = false;
          next.error_slack = static_cast<double>(missing) *
                             static_cast<double>(cfg_.n) *
                             static_cast<double>(cfg_.max_value);
        } else {
          next.status = distributed::QueryStatus::kOk;
          next.value = sum;
          next.exact = exact;
        }
        break;
      }
      case net::PartyRole::kAgg:
        next.status = distributed::QueryStatus::kFailed;
        break;
    }
  }
  {
    std::lock_guard lk(est_mu_);
    next.revision = est_.revision + 1;
    est_ = next;
  }
  est_cv_.notify_all();
  watch_notify();
}

bool MonitorHub::apply_push(std::size_t i, const net::PushUpdate& u,
                            std::string& err) {
  if (u.cursor == 0) {
    err = "push carries cursor 0";
    return false;
  }
  std::lock_guard lk(mu_);
  PartyMirror& m = mirrors_[i];
  const auto expected =
      static_cast<std::size_t>(std::max(cfg_.instances, 0));
  switch (cfg_.role) {
    case net::PartyRole::kCount: {
      if (u.base_cursor == 0) {
        distributed::CountPartyCheckpoint ck;
        if (!recovery::decode(u.body, ck)) {
          err = "undecodable full push body";
          return false;
        }
        m.count_base = std::move(ck);
      } else {
        if (m.cursor == 0 || u.base_cursor != m.cursor) {
          err = "delta against a baseline this mirror does not hold";
          return false;
        }
        if (!recovery::apply_delta_into(m.count_base, u.body,
                                        m.count_scratch)) {
          err = "undecodable delta push body";
          return false;
        }
        std::swap(m.count_base, m.count_scratch);
      }
      if (expected > 0 && m.count_base.waves.size() != expected) {
        err = "push carries " + std::to_string(m.count_base.waves.size()) +
              " instances, wanted " + std::to_string(expected);
        return false;
      }
      break;
    }
    case net::PartyRole::kDistinct: {
      if (u.base_cursor == 0) {
        distributed::DistinctPartyCheckpoint ck;
        if (!recovery::decode(u.body, ck)) {
          err = "undecodable full push body";
          return false;
        }
        m.distinct_base = std::move(ck);
      } else {
        if (m.cursor == 0 || u.base_cursor != m.cursor) {
          err = "delta against a baseline this mirror does not hold";
          return false;
        }
        if (!recovery::apply_delta_into(m.distinct_base, u.body,
                                        m.distinct_scratch)) {
          err = "undecodable delta push body";
          return false;
        }
        std::swap(m.distinct_base, m.distinct_scratch);
      }
      if (expected > 0 && m.distinct_base.waves.size() != expected) {
        err = "push carries " + std::to_string(m.distinct_base.waves.size()) +
              " instances, wanted " + std::to_string(expected);
        return false;
      }
      break;
    }
    case net::PartyRole::kBasic:
    case net::PartyRole::kSum: {
      std::size_t at = 0;
      std::uint64_t bits = 0;
      std::uint64_t exact = 0;
      if (!distributed::get_fixed64(u.body, at, bits) ||
          !distributed::get_varint(u.body, at, exact) || exact > 1 ||
          at != u.body.size()) {
        err = "undecodable total push body";
        return false;
      }
      const double v = std::bit_cast<double>(bits);
      if (!std::isfinite(v)) {
        err = "non-finite total";
        return false;
      }
      m.value = v;
      m.exact = exact == 1;
      break;
    }
    case net::PartyRole::kAgg:
      err = "agg role is not monitorable";
      return false;
  }
  m.live = true;
  m.generation = u.generation;
  m.cursor = u.cursor;
  m.seq = u.seq;
  m.snap_valid = false;
  return true;
}

void MonitorHub::leg_loop(std::size_t i, const std::stop_token& st) {
  const obs::MonitorHubObs& mobs = obs::MonitorHubObs::instance();
  const net::Endpoint& ep = cfg_.parties[i];
  auto backoff = cfg_.reconnect_base;
  bool ever_connected = false;
  // Per-leg circuit breaker (see HubConfig): consecutive failed cycles
  // trip it; while open the leg probes once per cooldown instead of
  // reconnect-backoff hammering a dead endpoint.
  int breaker_failures = 0;
  bool breaker_open = false;
  net::Frame frame;
  // Stop-aware sleep: backoff never delays shutdown by more than a slice.
  const auto nap = [&](std::chrono::milliseconds ms) {
    const net::Deadline until = net::Clock::now() + ms;
    while (!st.stop_requested() && net::Clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  while (!st.stop_requested()) {
    net::Socket sock =
        net::tcp_connect(ep.host, ep.port, net::deadline_in(cfg_.io_deadline));
    bool pushed_any = false;
    bool cycle_ok = false;  // handshake + subscribe landed this cycle
    if (sock.valid()) {
      if (ever_connected) mobs.leg_reconnects.add();
      ever_connected = true;
      do {
        const net::Deadline hs = net::deadline_in(cfg_.io_deadline);
        net::Hello hello;
        hello.client_id = cfg_.client_id;
        if (!net::write_frame(sock, net::MsgType::kHello, hello.encode(), hs)) {
          break;
        }
        if (net::read_frame(sock, frame, hs) != net::ReadStatus::kOk) break;
        net::HelloAck ack;
        if (frame.type != net::MsgType::kHelloAck ||
            !net::HelloAck::decode(frame.payload, ack) ||
            ack.role != cfg_.role) {
          mobs.protocol_errors.add();
          break;
        }
        // Epoch-aware resync: a generation the mirror doesn't know means
        // the party restarted, so its push-chain state died with it. Drop
        // the mirror and rebase on the subscription's full initial push.
        bool resync = false;
        {
          std::lock_guard lk(mu_);
          PartyMirror& m = mirrors_[i];
          if (m.cursor != 0 && ack.generation != m.generation) {
            m = PartyMirror{};
            resync = true;
          }
        }
        if (resync) {
          mobs.resyncs.add();
          emit("HUB RESYNC party=" + std::to_string(i) +
               " generation=" + std::to_string(ack.generation));
        }
        net::SubscribeRequest req;
        req.request_id = i + 1;
        req.role = cfg_.role;
        req.n = cfg_.n;
        req.has_slack = true;
        req.slack = budget_.threshold(cfg_.role, cfg_.n, cfg_.max_value);
        req.check_every_ms =
            static_cast<std::uint64_t>(cfg_.check_every.count());
        if (!net::write_frame(sock, net::MsgType::kSubscribe, req.encode(),
                              net::deadline_in(cfg_.io_deadline))) {
          break;
        }
        cycle_ok = true;
        std::uint64_t last_seq = 0;
        while (!st.stop_requested()) {
          if (!sock.wait_readable(
                  net::deadline_in(std::chrono::milliseconds(100)))) {
            continue;
          }
          const net::ReadStatus rs =
              net::read_frame(sock, frame, net::deadline_in(cfg_.io_deadline));
          if (rs != net::ReadStatus::kOk) {
            if (rs == net::ReadStatus::kMalformed) mobs.protocol_errors.add();
            break;
          }
          if (frame.type == net::MsgType::kErr) {
            net::ErrReply e;
            emit("HUB LEG ERROR party=" + std::to_string(i) + " " +
                 (net::ErrReply::decode(frame.payload, e) ? e.message
                                                          : "(undecodable)"));
            break;
          }
          net::PushUpdate u;
          if (frame.type != net::MsgType::kPushUpdate ||
              !net::PushUpdate::decode(frame.payload, u)) {
            mobs.protocol_errors.add();
            break;
          }
          // A generation moved mid-subscription or a seq gap both mean the
          // chain is broken; drop the leg and let the reconnect handshake
          // sort out whether a rebase is needed.
          if (u.request_id != req.request_id || u.role != cfg_.role ||
              u.generation != ack.generation || u.seq != last_seq + 1) {
            mobs.protocol_errors.add();
            break;
          }
          last_seq = u.seq;
          std::string err;
          if (!apply_push(i, u, err)) {
            mobs.protocol_errors.add();
            emit("HUB LEG DESYNC party=" + std::to_string(i) + " " + err);
            break;
          }
          mobs.updates.add();
          pushed_any = true;
          backoff = cfg_.reconnect_base;
          recompute();
        }
      } while (false);
      sock.close();
    }
    set_leg_down(i);
    if (cfg_.breaker_enabled) {
      if (cycle_ok) {
        if (breaker_open) {
          breaker_open = false;
          mobs.breaker_closes.add();
          emit("HUB BREAKER CLOSED party=" + std::to_string(i));
        }
        breaker_failures = 0;
      } else if (!breaker_open &&
                 ++breaker_failures >= cfg_.breaker_threshold) {
        breaker_open = true;
        mobs.breaker_trips.add();
        emit("HUB BREAKER OPEN party=" + std::to_string(i));
      }
      // A failed probe cycle keeps the breaker open: fall through to
      // another cooldown below.
    }
    if (st.stop_requested()) break;
    if (breaker_open) {
      // One probe cycle per cooldown; every skipped reconnect in between
      // is a fast fail the dead endpoint never sees.
      mobs.breaker_fast_fails.add();
      nap(cfg_.breaker_cooldown);
      mobs.breaker_probes.add();
      backoff = cfg_.reconnect_base;
      continue;
    }
    nap(backoff);
    if (!pushed_any) {
      backoff = std::min(backoff * 2, cfg_.reconnect_max);
    }
  }
}

void MonitorHub::reap_watchers() {
  std::lock_guard lk(watchers_mu_);
  std::erase_if(watchers_, [](const Watcher& w) {
    return w.done->load(std::memory_order_acquire);
  });
}

void MonitorHub::watch_accept_loop(const std::stop_token& st) {
  const obs::MonitorHubObs& mobs = obs::MonitorHubObs::instance();
  while (!st.stop_requested()) {
    net::Socket sock =
        listener_.accept_one(net::deadline_in(std::chrono::milliseconds(100)));
    if (!sock.valid()) continue;
    if (cfg_.watcher_sndbuf > 0) {
      ::setsockopt(sock.fd(), SOL_SOCKET, SO_SNDBUF, &cfg_.watcher_sndbuf,
                   sizeof cfg_.watcher_sndbuf);
    }
    mobs.watchers.add();
    reap_watchers();
    bool over_cap = false;
    {
      std::lock_guard lk(watchers_mu_);
      over_cap = watchers_.size() >= cfg_.max_watchers;
    }
    if (over_cap) {
      mobs.watcher_rejected.add();
      net::ErrReply err{0, net::ErrCode::kOverloaded, "watcher limit reached"};
      // Short deadline, outside watchers_mu_: a peer too stalled to take
      // one small frame must not head-of-line-block the accept loop for
      // the full io_deadline (same rule as PartyServer's accept loop).
      (void)net::write_frame(sock, net::MsgType::kErr, err.encode(),
                             net::deadline_in(std::chrono::milliseconds(100)));
      continue;  // RAII closes the socket
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    Watcher w;
    w.done = done;
    w.thread = std::jthread(
        [this, s = std::move(sock), done](const std::stop_token& cst) mutable {
          serve_watcher(std::move(s), cst);
          done->store(true, std::memory_order_release);
        });
    std::lock_guard lk(watchers_mu_);
    watchers_.push_back(std::move(w));
  }
}

void MonitorHub::serve_watcher(net::Socket sock, const std::stop_token& st) {
  const obs::MonitorHubObs& mobs = obs::MonitorHubObs::instance();
  net::Frame frame;
  Bytes payload;
  bool subscribed = false;
  std::uint64_t watcher_seq = 0;
  std::uint64_t sent_revision = 0;
  const auto send_err = [&](std::uint64_t request_id, net::ErrCode code,
                            const char* msg) {
    const net::ErrReply err{request_id, code, msg};
    return net::write_frame(sock, net::MsgType::kErr, err.encode(),
                            net::deadline_in(cfg_.io_deadline));
  };
  const auto send_estimate = [&](const HubEstimate& e) {
    net::EstimateUpdate up;
    up.seq = ++watcher_seq;
    up.round = e.revision;
    up.status = e.status == distributed::QueryStatus::kOk ? 1
                : e.status == distributed::QueryStatus::kDegraded ? 2
                                                                  : 3;
    up.value = e.value;
    up.exact = e.exact;
    up.n = cfg_.n;
    up.missing = e.missing;
    up.error_slack = e.error_slack;
    payload.clear();
    up.encode_into(payload);
    // Backpressure: the push gets the per-watcher write budget, not the
    // full io_deadline. A peer that cannot drain one small frame in time
    // is evicted with a typed close so this thread returns to the pool —
    // healthy watchers fan out on their own threads and never wait on it.
    if (!net::write_frame(sock, net::MsgType::kPushUpdate, payload,
                          net::deadline_in(cfg_.watcher_write_budget))) {
      mobs.watcher_evicted.add();
      const net::ErrReply err{0, net::ErrCode::kOverloaded,
                              "watcher too slow; evicted"};
      (void)net::write_frame(sock, net::MsgType::kErr, err.encode(),
                             net::deadline_in(std::chrono::milliseconds(100)));
      return false;
    }
    sent_revision = e.revision;
    mobs.watcher_updates.add();
    return true;
  };
  while (!st.stop_requested()) {
    // Drain inbound frames first; once subscribed the poll shortens so a
    // revision wait can take over as the main blocking point.
    const auto tick = subscribed ? std::chrono::milliseconds(1)
                                 : std::chrono::milliseconds(100);
    if (sock.wait_readable(net::deadline_in(tick))) {
      const net::ReadStatus rs =
          net::read_frame(sock, frame, net::deadline_in(cfg_.io_deadline));
      if (rs == net::ReadStatus::kMalformed) {
        (void)send_err(0, net::ErrCode::kBadRequest, "malformed frame");
        return;
      }
      if (rs != net::ReadStatus::kOk) return;
      switch (frame.type) {
        case net::MsgType::kHello: {
          net::Hello h;
          if (!net::Hello::decode(frame.payload, h)) {
            (void)send_err(0, net::ErrCode::kBadRequest, "bad hello");
            return;
          }
          net::HelloAck ack;
          ack.role = cfg_.role;
          ack.party_id = 0;
          ack.instances =
              static_cast<std::uint64_t>(std::max(cfg_.instances, 0));
          ack.window = cfg_.n;
          ack.items_observed = 0;
          ack.generation = 0;
          if (!net::write_frame(sock, net::MsgType::kHelloAck, ack.encode(),
                                net::deadline_in(cfg_.io_deadline))) {
            return;
          }
          break;
        }
        case net::MsgType::kSubscribe: {
          net::SubscribeRequest req;
          if (!net::SubscribeRequest::decode(frame.payload, req)) {
            (void)send_err(0, net::ErrCode::kBadRequest, "bad subscribe");
            return;
          }
          if (req.role != cfg_.role) {
            if (!send_err(req.request_id, net::ErrCode::kWrongRole,
                          "hub monitors a different role")) {
              return;
            }
            break;
          }
          if (req.n != cfg_.n) {
            if (!send_err(req.request_id, net::ErrCode::kBadRequest,
                          "hub monitors a different window")) {
              return;
            }
            break;
          }
          subscribed = true;
          // The current estimate is the subscription's ack.
          if (!send_estimate(estimate())) return;
          break;
        }
        case net::MsgType::kUnsubscribe: {
          net::Unsubscribe u;
          if (!net::Unsubscribe::decode(frame.payload, u)) {
            (void)send_err(0, net::ErrCode::kBadRequest, "bad unsubscribe");
            return;
          }
          subscribed = false;
          break;
        }
        default:
          (void)send_err(0, net::ErrCode::kBadRequest,
                         "unsupported message for a monitor hub");
          return;
      }
      continue;
    }
    if (!subscribed) continue;
    const HubEstimate e =
        wait_revision(sent_revision, std::chrono::milliseconds(100));
    if (e.revision > sent_revision) {
      if (!send_estimate(e)) return;
    }
  }
}

}  // namespace waves::monitor
