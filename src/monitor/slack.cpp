#include "monitor/slack.hpp"

#include <algorithm>
#include <cmath>

namespace waves::monitor {

const char* slack_split_name(SlackSplit s) {
  switch (s) {
    case SlackSplit::kUniform:
      return "uniform";
    case SlackSplit::kBoosted:
      return "boosted";
  }
  return "unknown";
}

bool slack_split_from_name(const std::string& name, SlackSplit& out) {
  if (name == "uniform") out = SlackSplit::kUniform;
  else if (name == "boosted") out = SlackSplit::kBoosted;
  else return false;
  return true;
}

double SlackBudget::share() const {
  if (parties == 0 || eps <= 0.0) return 0.0;
  const double t = static_cast<double>(parties);
  switch (split) {
    case SlackSplit::kUniform:
      return eps / t;
    case SlackSplit::kBoosted:
      return eps / std::sqrt(t);
  }
  return eps / t;
}

double SlackBudget::threshold(net::PartyRole role, std::uint64_t n,
                              std::uint64_t max_value) const {
  const double s = share();
  if (s <= 0.0) return 1.0;
  double raw = s * static_cast<double>(n);
  if (role == net::PartyRole::kSum) {
    raw *= static_cast<double>(std::max<std::uint64_t>(max_value, 1));
  }
  return std::max(raw, 1.0);
}

}  // namespace waves::monitor
