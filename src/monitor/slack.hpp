// eps-slack budgets for continuous monitoring (src/monitor/).
//
// The polling referee re-fetches every party each round, so steady-state
// traffic scales with query rate even when nothing changed. The
// continuous-monitoring model (Chan-Lam-Lee-Ting, arXiv:0912.4569) inverts
// that: the referee grants each of the t parties a local slack — a share of
// the global error budget eps — and a party stays silent until its local
// state has drifted past its share. Between pushes the referee's merged
// estimate is stale by at most the sum of the un-pushed drifts, so traffic
// becomes proportional to change, not to query rate.
//
// SlackBudget computes the per-party share and turns it into the absolute
// threshold a SubscribeRequest carries (tag 3):
//
//   kUniform  share = eps / t. The shares sum to eps, so the merged
//     estimate is always within an additive eps * n (scaled by max_value
//     for sums) of what a poll at the same instant would return — the
//     conservative split matching the paper's worst-case accuracy
//     accounting (Theorems 5-7 bound each party's synopsis error the same
//     way; the slack is an extra, explicitly-budgeted staleness term on
//     top).
//
//   kBoosted  share = eps / sqrt(t), after Xu ("Boosting the Basic
//     Counting on Distributed Streams", arXiv:1312.0042): independent
//     per-party drifts cancel like a random walk, so the *realized* error
//     of the merged estimate concentrates around sqrt(t) * share = eps
//     while each party pushes a factor sqrt(t) less often. The worst case
//     (every party drifting the same direction) is sqrt(t) * eps — the
//     split to pick when communication is the scarce resource and the
//     adversary is not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/protocol.hpp"

namespace waves::monitor {

enum class SlackSplit : std::uint8_t {
  kUniform = 1,
  kBoosted = 2,
};

[[nodiscard]] const char* slack_split_name(SlackSplit s);
/// False on an unknown name; `out` untouched.
[[nodiscard]] bool slack_split_from_name(const std::string& name,
                                         SlackSplit& out);

struct SlackBudget {
  double eps = 0.0;        // global staleness budget, fraction of the window
  std::size_t parties = 0;
  SlackSplit split = SlackSplit::kUniform;

  /// Per-party share of eps under the configured split.
  [[nodiscard]] double share() const;

  /// Absolute push threshold for one party, in the role's units — what the
  /// subscription's tag-3 slack carries. Count/distinct: items in the
  /// window (a party pushes after share * n un-pushed items, each of which
  /// moves the true count/distinct count by at most 1). Basic: estimate
  /// units, share * n. Sum: share * n * max_value. Never below 1, so a
  /// degenerate budget still pushes on change instead of flooding.
  [[nodiscard]] double threshold(net::PartyRole role, std::uint64_t n,
                                 std::uint64_t max_value) const;
};

}  // namespace waves::monitor
