// Parties of the distributed-streams model (Sec. 3.4 / Sec. 4.1).
//
// A party observes only its own stream and keeps one synopsis instance per
// median-estimator repetition. All parties of a deployment are constructed
// with the same shared seed, so their hash functions coincide (stored
// coins); they exchange nothing until the Referee requests snapshots.
// Parties are internally locked so a Referee may query while the ingestion
// thread is feeding.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/median_estimator.hpp"
#include "core/rand_wave.hpp"
#include "gf2/gf2.hpp"
#include "gf2/shared_randomness.hpp"
#include "obs/metrics.hpp"
#include "util/packed_bits.hpp"

namespace waves::distributed {

/// Scenario-3 party for Union Counting (randomized waves).
class CountParty {
 public:
  CountParty(const core::RandWave::Params& params, int instances,
             std::uint64_t shared_seed);

  void observe(bool bit);

  /// Observe `count` bits packed 64 per word, LSB first, under a single
  /// lock acquisition with one obs flush at the end. State-identical to
  /// `count` observe() calls. Large batches hold the lock for their whole
  /// duration — feed via bounded chunks (see ingest_driver) when a Referee
  /// must interleave queries.
  void observe_words(std::span<const std::uint64_t> words,
                     std::uint64_t count);
  void observe_batch(const util::PackedBitStream& bits) {
    observe_words(bits.words(), bits.size());
  }

  /// Per-instance snapshots for a window of n items.
  [[nodiscard]] std::vector<core::RandWaveSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::RandWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  /// Stable metrics identity: value of the `party` label on this party's
  /// waves_party_* series.
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::RandWave> waves_;
  obs::PartyObs obs_{"count"};
};

/// Distinct-values party (Sec. 5).
class DistinctParty {
 public:
  DistinctParty(const core::DistinctWave::Params& params, int instances,
                std::uint64_t shared_seed);

  void observe(std::uint64_t value);

  /// Observe a run of values under a single lock acquisition with one obs
  /// flush at the end. State-identical to per-value observe() calls.
  void observe_batch(std::span<const std::uint64_t> values);

  [[nodiscard]] std::vector<core::DistinctSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::DistinctWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::DistinctWave> waves_;
  obs::PartyObs obs_{"distinct"};
};

}  // namespace waves::distributed
