// Parties of the distributed-streams model (Sec. 3.4 / Sec. 4.1).
//
// A party observes only its own stream and keeps one synopsis instance per
// median-estimator repetition. All parties of a deployment are constructed
// with the same shared seed, so their hash functions coincide (stored
// coins); they exchange nothing until the Referee requests snapshots.
// Parties are internally locked so a Referee may query while the ingestion
// thread is feeding.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/median_estimator.hpp"
#include "core/rand_wave.hpp"
#include "gf2/gf2.hpp"
#include "gf2/shared_randomness.hpp"
#include "obs/metrics.hpp"
#include "util/packed_bits.hpp"

namespace waves::distributed {

/// Full queryable state of a party: per-instance wave checkpoints plus the
/// stream cursor (items consumed from the party's deterministic feed). The
/// cursor lets a restarted daemon resume ingestion differentially — replay
/// items [cursor, end) of the same stream and the party is behaviorally
/// identical to one that never crashed.
struct CountPartyCheckpoint {
  std::uint64_t cursor = 0;
  std::vector<core::RandWaveCheckpoint> waves;  // one per instance
};

struct DistinctPartyCheckpoint {
  std::uint64_t cursor = 0;
  std::vector<core::DistinctWaveCheckpoint> waves;
};

/// Scenario-3 party for Union Counting (randomized waves).
class CountParty {
 public:
  CountParty(const core::RandWave::Params& params, int instances,
             std::uint64_t shared_seed);

  void observe(bool bit);

  /// Observe `count` bits packed 64 per word, LSB first, under a single
  /// lock acquisition with one obs flush at the end. State-identical to
  /// `count` observe() calls. Large batches hold the lock for their whole
  /// duration — feed via bounded chunks (see ingest_driver) when a Referee
  /// must interleave queries.
  void observe_words(std::span<const std::uint64_t> words,
                     std::uint64_t count);
  void observe_batch(const util::PackedBitStream& bits) {
    observe_words(bits.words(), bits.size());
  }

  /// Per-instance snapshots for a window of n items.
  [[nodiscard]] std::vector<core::RandWaveSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::RandWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  /// Stable metrics identity: value of the `party` label on this party's
  /// waves_party_* series.
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

  /// Capture every instance plus the stream cursor (cheap: the whole party
  /// is O(instances * (1/eps) log^2 N) bits — the point of the paper).
  [[nodiscard]] CountPartyCheckpoint checkpoint() const;

  /// Load into a freshly constructed party (same params, instances, and
  /// shared seed — the coins replay identically). Precondition: no items
  /// observed yet and ck.waves.size() == instances().
  void restore(const CountPartyCheckpoint& ck);

  /// Run `fn(std::span<const core::RandWave>)` under the party lock. The
  /// O(change) delta encoder reads ring contents in place instead of paying
  /// a full checkpoint copy per request. `fn` must not retain references
  /// past the call and must not re-enter the party.
  template <class Fn>
  auto visit_locked(Fn&& fn) const {
    std::lock_guard lk(mu_);
    return fn(std::span<const core::RandWave>(waves_.data(), waves_.size()));
  }

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::RandWave> waves_;
  obs::PartyObs obs_{"count"};
};

/// Distinct-values party (Sec. 5).
class DistinctParty {
 public:
  DistinctParty(const core::DistinctWave::Params& params, int instances,
                std::uint64_t shared_seed);

  void observe(std::uint64_t value);

  /// Observe a run of values under a single lock acquisition with one obs
  /// flush at the end. State-identical to per-value observe() calls.
  void observe_batch(std::span<const std::uint64_t> values);

  [[nodiscard]] std::vector<core::DistinctSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::DistinctWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

  [[nodiscard]] DistinctPartyCheckpoint checkpoint() const;
  /// Same contract as CountParty::restore.
  void restore(const DistinctPartyCheckpoint& ck);

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::DistinctWave> waves_;
  obs::PartyObs obs_{"distinct"};
};

}  // namespace waves::distributed
