// Parties of the distributed-streams model (Sec. 3.4 / Sec. 4.1).
//
// A party observes only its own stream and keeps one synopsis instance per
// median-estimator repetition. All parties of a deployment are constructed
// with the same shared seed, so their hash functions coincide (stored
// coins); they exchange nothing until the Referee requests snapshots.
// Parties are internally locked so a Referee may query while the ingestion
// thread is feeding.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/median_estimator.hpp"
#include "core/rand_wave.hpp"
#include "gf2/gf2.hpp"
#include "gf2/shared_randomness.hpp"
#include "obs/metrics.hpp"

namespace waves::distributed {

/// Scenario-3 party for Union Counting (randomized waves).
class CountParty {
 public:
  CountParty(const core::RandWave::Params& params, int instances,
             std::uint64_t shared_seed);

  void observe(bool bit);

  /// Per-instance snapshots for a window of n items.
  [[nodiscard]] std::vector<core::RandWaveSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::RandWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  /// Stable metrics identity: value of the `party` label on this party's
  /// waves_party_* series.
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::RandWave> waves_;
  obs::PartyObs obs_{"count"};
};

/// Distinct-values party (Sec. 5).
class DistinctParty {
 public:
  DistinctParty(const core::DistinctWave::Params& params, int instances,
                std::uint64_t shared_seed);

  void observe(std::uint64_t value);

  [[nodiscard]] std::vector<core::DistinctSnapshot> snapshots(
      std::uint64_t n) const;

  [[nodiscard]] int instances() const noexcept {
    return static_cast<int>(waves_.size());
  }
  [[nodiscard]] const core::DistinctWave& instance(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t items_observed() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;
  [[nodiscard]] int obs_id() const noexcept { return obs_.id(); }

 private:
  [[nodiscard]] std::uint64_t space_bits_locked() const noexcept;

  gf2::Field field_;
  mutable std::mutex mu_;
  std::vector<core::DistinctWave> waves_;
  obs::PartyObs obs_{"distinct"};
};

}  // namespace waves::distributed
