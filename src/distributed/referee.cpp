#include "distributed/referee.hpp"

#include <cassert>
#include <vector>

#include "core/median_estimator.hpp"
#include "distributed/wire.hpp"

namespace waves::distributed {

core::Estimate union_count(std::span<const CountParty* const> parties,
                           std::uint64_t n, WireStats* stats) {
  assert(!parties.empty());
  const int m = parties.front()->instances();
  for (const CountParty* p : parties) {
    assert(p->instances() == m);
    (void)p;
  }

  // Gather all messages first (one round, as in the model), then combine.
  std::vector<std::vector<core::RandWaveSnapshot>> by_party;
  by_party.reserve(parties.size());
  for (const CountParty* p : parties) {
    by_party.push_back(p->snapshots(n));
    if (stats != nullptr) {
      for (const auto& s : by_party.back()) {
        stats->add(wire_bytes(s),
                   paper_bits(s, p->instance(0).top_level()));
      }
    }
  }

  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::RandWaveSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      inst[j] = by_party[j][static_cast<std::size_t>(i)];
    }
    per_instance.push_back(
        core::referee_union_count(inst, n, parties.front()->instance(i).hash())
            .value);
  }
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

core::Estimate distinct_count(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  assert(!parties.empty());
  const int m = parties.front()->instances();
  for (const DistinctParty* p : parties) {
    assert(p->instances() == m);
    (void)p;
  }

  std::vector<std::vector<core::DistinctSnapshot>> by_party;
  by_party.reserve(parties.size());
  for (const DistinctParty* p : parties) {
    by_party.push_back(p->snapshots(n));
    if (stats != nullptr) {
      for (const auto& s : by_party.back()) {
        stats->add(wire_bytes(s),
                   paper_bits(s, p->instance(0).top_level(),
                              p->instance(0).top_level()));
      }
    }
  }

  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::DistinctSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      inst[j] = by_party[j][static_cast<std::size_t>(i)];
    }
    per_instance.push_back(
        core::referee_distinct_count(
            inst, n, parties.front()->instance(i).hash(), predicate)
            .value);
  }
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

}  // namespace waves::distributed

namespace waves::distributed {

core::Estimate union_count_wire(std::span<const CountParty* const> parties,
                                std::uint64_t n, WireStats* stats) {
  assert(!parties.empty());
  const int m = parties.front()->instances();

  // Party side: snapshot, encode, "send".
  std::vector<std::vector<Bytes>> inflight;
  inflight.reserve(parties.size());
  for (const CountParty* p : parties) {
    auto snaps = p->snapshots(n);
    std::vector<Bytes> msgs;
    msgs.reserve(snaps.size());
    for (const auto& s : snaps) {
      msgs.push_back(encode(s));
      if (stats != nullptr) {
        stats->add(msgs.back().size(),
                   static_cast<double>(msgs.back().size()) * 8.0);
      }
    }
    inflight.push_back(std::move(msgs));
  }

  // Referee side: decode, combine per instance, median.
  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::RandWaveSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      const bool ok =
          decode(inflight[j][static_cast<std::size_t>(i)], inst[j]);
      assert(ok && "wire round-trip must succeed");
      (void)ok;
    }
    per_instance.push_back(
        core::referee_union_count(inst, n, parties.front()->instance(i).hash())
            .value);
  }
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

core::Estimate distinct_count_wire(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  assert(!parties.empty());
  const int m = parties.front()->instances();

  std::vector<std::vector<Bytes>> inflight;
  inflight.reserve(parties.size());
  for (const DistinctParty* p : parties) {
    auto snaps = p->snapshots(n);
    std::vector<Bytes> msgs;
    msgs.reserve(snaps.size());
    for (const auto& s : snaps) {
      msgs.push_back(encode(s));
      if (stats != nullptr) {
        stats->add(msgs.back().size(),
                   static_cast<double>(msgs.back().size()) * 8.0);
      }
    }
    inflight.push_back(std::move(msgs));
  }

  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::DistinctSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      const bool ok =
          decode(inflight[j][static_cast<std::size_t>(i)], inst[j]);
      assert(ok && "wire round-trip must succeed");
      (void)ok;
    }
    per_instance.push_back(
        core::referee_distinct_count(
            inst, n, parties.front()->instance(i).hash(), predicate)
            .value);
  }
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

}  // namespace waves::distributed
