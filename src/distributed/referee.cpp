#include "distributed/referee.hpp"

#include <cassert>
#include <vector>

#include "core/median_estimator.hpp"
#include "distributed/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace waves::distributed {

namespace {

// Per-protocol/transport instruments, fetched once per combination. The
// span tracer keeps the per-round story (parties contacted, messages,
// encoded bytes, decode failures, latency); these aggregate across rounds.
struct RoundMetrics {
  const obs::Counter& rounds;
  const obs::Counter& messages;
  const obs::Histogram& bytes_h;
  const obs::Histogram& seconds_h;

  static RoundMetrics make(const char* labels) {
    obs::Registry& reg = obs::Registry::instance();
    return RoundMetrics{
        reg.counter("waves_referee_rounds_total", labels),
        reg.counter("waves_referee_messages_total", labels),
        reg.histogram("waves_referee_round_bytes", labels,
                      obs::bytes_buckets()),
        reg.histogram("waves_referee_round_seconds", labels,
                      obs::latency_buckets())};
  }
};

void finish_round(const RoundMetrics& m, obs::Span& span, std::size_t parties,
                  std::uint64_t msgs, std::uint64_t bytes,
                  std::uint64_t decode_failures) {
  span.set("parties", static_cast<double>(parties));
  span.set("messages", static_cast<double>(msgs));
  span.set("bytes", static_cast<double>(bytes));
  span.set("decode_failures", static_cast<double>(decode_failures));
  const double dt = span.end();
  m.rounds.add();
  m.messages.add(msgs);
  m.bytes_h.observe(static_cast<double>(bytes));
  m.seconds_h.observe(dt);
}

}  // namespace

core::Estimate union_count(std::span<const CountParty* const> parties,
                           std::uint64_t n, WireStats* stats) {
  assert(!parties.empty());
  static const RoundMetrics metrics =
      RoundMetrics::make("protocol=\"union\",transport=\"direct\"");
  auto span = obs::Tracer::instance().start("referee.union_count");
  const int m = parties.front()->instances();
  for (const CountParty* p : parties) {
    assert(p->instances() == m);
    (void)p;
  }

  // Gather all messages first (one round, as in the model), then combine.
  std::uint64_t msgs = 0, bytes = 0;
  std::vector<std::vector<core::RandWaveSnapshot>> by_party;
  by_party.reserve(parties.size());
  for (const CountParty* p : parties) {
    by_party.push_back(p->snapshots(n));
    for (const auto& s : by_party.back()) {
      ++msgs;
      bytes += wire_bytes(s);
      if (stats != nullptr) {
        stats->add(wire_bytes(s),
                   paper_bits(s, p->instance(0).top_level()));
      }
    }
  }

  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::RandWaveSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      inst[j] = by_party[j][static_cast<std::size_t>(i)];
    }
    per_instance.push_back(
        core::referee_union_count(inst, n, parties.front()->instance(i).hash())
            .value);
  }
  finish_round(metrics, span, parties.size(), msgs, bytes, 0);
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

core::Estimate distinct_count(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  assert(!parties.empty());
  static const RoundMetrics metrics =
      RoundMetrics::make("protocol=\"distinct\",transport=\"direct\"");
  auto span = obs::Tracer::instance().start("referee.distinct_count");
  const int m = parties.front()->instances();
  for (const DistinctParty* p : parties) {
    assert(p->instances() == m);
    (void)p;
  }

  std::uint64_t msgs = 0, bytes = 0;
  std::vector<std::vector<core::DistinctSnapshot>> by_party;
  by_party.reserve(parties.size());
  for (const DistinctParty* p : parties) {
    by_party.push_back(p->snapshots(n));
    for (const auto& s : by_party.back()) {
      ++msgs;
      bytes += wire_bytes(s);
      if (stats != nullptr) {
        stats->add(wire_bytes(s),
                   paper_bits(s, p->instance(0).top_level(),
                              p->instance(0).top_level()));
      }
    }
  }

  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::DistinctSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      inst[j] = by_party[j][static_cast<std::size_t>(i)];
    }
    per_instance.push_back(
        core::referee_distinct_count(
            inst, n, parties.front()->instance(i).hash(), predicate)
            .value);
  }
  finish_round(metrics, span, parties.size(), msgs, bytes, 0);
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

}  // namespace waves::distributed

namespace waves::distributed {

core::Estimate union_count_wire(std::span<const CountParty* const> parties,
                                std::uint64_t n, WireStats* stats) {
  assert(!parties.empty());
  static const RoundMetrics metrics =
      RoundMetrics::make("protocol=\"union\",transport=\"wire\"");
  auto span = obs::Tracer::instance().start("referee.union_count_wire");
  const int m = parties.front()->instances();

  // Party side: snapshot, encode, "send".
  std::uint64_t msgs = 0, bytes = 0;
  std::vector<std::vector<Bytes>> inflight;
  inflight.reserve(parties.size());
  for (const CountParty* p : parties) {
    auto snaps = p->snapshots(n);
    std::vector<Bytes> out;
    out.reserve(snaps.size());
    for (const auto& s : snaps) {
      out.push_back(encode(s));
      ++msgs;
      bytes += out.back().size();
      if (stats != nullptr) {
        stats->add(out.back().size(),
                   static_cast<double>(out.back().size()) * 8.0);
      }
    }
    inflight.push_back(std::move(out));
  }

  // Referee side: decode, combine per instance, median.
  std::uint64_t decode_failures = 0;
  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::RandWaveSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      const bool ok =
          decode(inflight[j][static_cast<std::size_t>(i)], inst[j]);
      if (!ok) ++decode_failures;
      assert(ok && "wire round-trip must succeed");
    }
    per_instance.push_back(
        core::referee_union_count(inst, n, parties.front()->instance(i).hash())
            .value);
  }
  finish_round(metrics, span, parties.size(), msgs, bytes, decode_failures);
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

core::Estimate distinct_count_wire(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  assert(!parties.empty());
  static const RoundMetrics metrics =
      RoundMetrics::make("protocol=\"distinct\",transport=\"wire\"");
  auto span = obs::Tracer::instance().start("referee.distinct_count_wire");
  const int m = parties.front()->instances();

  std::uint64_t msgs = 0, bytes = 0;
  std::vector<std::vector<Bytes>> inflight;
  inflight.reserve(parties.size());
  for (const DistinctParty* p : parties) {
    auto snaps = p->snapshots(n);
    std::vector<Bytes> out;
    out.reserve(snaps.size());
    for (const auto& s : snaps) {
      out.push_back(encode(s));
      ++msgs;
      bytes += out.back().size();
      if (stats != nullptr) {
        stats->add(out.back().size(),
                   static_cast<double>(out.back().size()) * 8.0);
      }
    }
    inflight.push_back(std::move(out));
  }

  std::uint64_t decode_failures = 0;
  std::vector<double> per_instance;
  per_instance.reserve(static_cast<std::size_t>(m));
  std::vector<core::DistinctSnapshot> inst(parties.size());
  for (int i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < parties.size(); ++j) {
      const bool ok =
          decode(inflight[j][static_cast<std::size_t>(i)], inst[j]);
      if (!ok) ++decode_failures;
      assert(ok && "wire round-trip must succeed");
    }
    per_instance.push_back(
        core::referee_distinct_count(
            inst, n, parties.front()->instance(i).hash(), predicate)
            .value);
  }
  finish_round(metrics, span, parties.size(), msgs, bytes, decode_failures);
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

}  // namespace waves::distributed
