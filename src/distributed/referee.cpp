#include "distributed/referee.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <utility>
#include <vector>

#include "core/median_estimator.hpp"
#include "distributed/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace waves::distributed {

namespace {

// Per-protocol/transport instruments. The span tracer keeps the per-round
// story (parties contacted, messages, encoded bytes, decode failures,
// latency); these aggregate across rounds. Registration is a mutexed name
// lookup — fine on the cold query path.
struct RoundMetrics {
  const obs::Counter& rounds;
  const obs::Counter& messages;
  const obs::Histogram& bytes_h;
  const obs::Histogram& seconds_h;
  // Worker-threads used by the parallel combine, summed over rounds;
  // divided by rounds_total it reads as average combine parallelism.
  const obs::Counter& combine_workers;

  static RoundMetrics make(const std::string& labels) {
    obs::Registry& reg = obs::Registry::instance();
    return RoundMetrics{
        reg.counter("waves_referee_rounds_total", labels),
        reg.counter("waves_referee_messages_total", labels),
        reg.histogram("waves_referee_round_bytes", labels,
                      obs::bytes_buckets()),
        reg.histogram("waves_referee_round_seconds", labels,
                      obs::latency_buckets()),
        reg.counter("waves_referee_combine_workers_total", labels)};
  }
};

void finish_round(const RoundMetrics& m, obs::Span& span, std::size_t parties,
                  const CollectStats& info) {
  span.set("parties", static_cast<double>(parties));
  span.set("messages", static_cast<double>(info.messages));
  span.set("bytes", static_cast<double>(info.bytes));
  span.set("decode_failures", static_cast<double>(info.decode_failures));
  const double dt = span.end();
  m.rounds.add();
  m.messages.add(info.messages);
  m.bytes_h.observe(static_cast<double>(info.bytes));
  m.seconds_h.observe(dt);
}

// Span names stay what they were before the SnapshotSource refactor:
// referee.union_count / referee.union_count_wire / ...; tcp rounds get
// their own _tcp suffix.
std::string span_suffix(const char* transport) {
  return std::string(transport) == "direct" ? std::string{}
                                            : "_" + std::string(transport);
}

std::string quorum_error(const char* protocol,
                         const std::vector<std::size_t>& missing) {
  std::string msg = std::string(protocol) +
                    " fails closed under partial quorum; missing parties:";
  for (std::size_t j : missing) msg += " " + std::to_string(j);
  return msg;
}

// Worker count for the parallel combine: instances are independent, so up
// to 4 threads split them. Below 4 instances the spawn cost outweighs the
// work and the loop runs inline.
int combine_workers(int m) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = static_cast<int>(std::max(1u, hw));
  return std::min({4, m >= 4 ? m : 1, cap});
}

// Fig. 6 steps 2-3 / Sec. 5 levelwise union, per instance, then the
// median over instances — identical for every transport. Instances touch
// disjoint per_instance slots and only read by_party and the (stateless,
// const) combine inputs, so they parallelize over a small worker pool; slot
// i always holds instance i's value, keeping the median deterministic
// regardless of scheduling.
template <class Snapshot, class Combine>
core::Estimate combine_median(
    const std::vector<std::vector<Snapshot>>& by_party, int m,
    std::uint64_t n, int workers, Combine&& combine) {
  std::vector<double> per_instance(static_cast<std::size_t>(m), 0.0);
  auto run = [&](std::vector<Snapshot>& inst, int i) {
    for (std::size_t j = 0; j < by_party.size(); ++j) {
      inst[j] = by_party[j][static_cast<std::size_t>(i)];
    }
    per_instance[static_cast<std::size_t>(i)] = combine(inst, i);
  };
  if (workers <= 1) {
    std::vector<Snapshot> inst(by_party.size());
    for (int i = 0; i < m; ++i) run(inst, i);
  } else {
    std::atomic<int> next{0};
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        std::vector<Snapshot> inst(by_party.size());
        for (int i = next.fetch_add(1, std::memory_order_relaxed); i < m;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          run(inst, i);
        }
      });
    }
    pool.clear();  // join
  }
  return core::Estimate{core::median(std::move(per_instance)), false, n};
}

}  // namespace

InProcessCountSource::InProcessCountSource(
    std::span<const CountParty* const> parties, bool via_wire)
    : parties_(parties), via_wire_(via_wire) {
  assert(!parties_.empty());
  for (const CountParty* p : parties_) {
    assert(p->instances() == parties_.front()->instances());
    (void)p;
  }
}

std::size_t InProcessCountSource::party_count() const {
  return parties_.size();
}

int InProcessCountSource::instances() const {
  return parties_.front()->instances();
}

const gf2::ExpHash& InProcessCountSource::hash(int instance) const {
  return parties_.front()->instance(instance).hash();
}

const char* InProcessCountSource::transport() const {
  return via_wire_ ? "wire" : "direct";
}

std::vector<std::vector<core::RandWaveSnapshot>>
InProcessCountSource::collect(std::uint64_t n, std::vector<std::size_t>&,
                              WireStats* stats, CollectStats& info) {
  std::vector<std::vector<core::RandWaveSnapshot>> by_party;
  by_party.reserve(parties_.size());
  for (const CountParty* p : parties_) {
    auto snaps = p->snapshots(n);
    if (!via_wire_) {
      for (const auto& s : snaps) {
        ++info.messages;
        const std::uint64_t b = wire_bytes(s);
        info.bytes += b;
        if (stats != nullptr) {
          stats->add(b, paper_bits(s, p->instance(0).top_level()));
        }
      }
      by_party.push_back(std::move(snaps));
    } else {
      std::vector<core::RandWaveSnapshot> decoded(snaps.size());
      for (std::size_t i = 0; i < snaps.size(); ++i) {
        const Bytes enc = encode(snaps[i]);
        ++info.messages;
        info.bytes += enc.size();
        if (stats != nullptr) {
          stats->add(enc.size(), static_cast<double>(enc.size()) * 8.0);
        }
        const bool ok = decode(enc, decoded[i]);
        if (!ok) ++info.decode_failures;
        assert(ok && "wire round-trip must succeed");
      }
      by_party.push_back(std::move(decoded));
    }
  }
  return by_party;
}

InProcessDistinctSource::InProcessDistinctSource(
    std::span<const DistinctParty* const> parties, bool via_wire)
    : parties_(parties), via_wire_(via_wire) {
  assert(!parties_.empty());
  for (const DistinctParty* p : parties_) {
    assert(p->instances() == parties_.front()->instances());
    (void)p;
  }
}

std::size_t InProcessDistinctSource::party_count() const {
  return parties_.size();
}

int InProcessDistinctSource::instances() const {
  return parties_.front()->instances();
}

const gf2::ExpHash& InProcessDistinctSource::hash(int instance) const {
  return parties_.front()->instance(instance).hash();
}

const char* InProcessDistinctSource::transport() const {
  return via_wire_ ? "wire" : "direct";
}

std::vector<std::vector<core::DistinctSnapshot>>
InProcessDistinctSource::collect(std::uint64_t n, std::vector<std::size_t>&,
                                 WireStats* stats, CollectStats& info) {
  std::vector<std::vector<core::DistinctSnapshot>> by_party;
  by_party.reserve(parties_.size());
  for (const DistinctParty* p : parties_) {
    auto snaps = p->snapshots(n);
    if (!via_wire_) {
      for (const auto& s : snaps) {
        ++info.messages;
        const std::uint64_t b = wire_bytes(s);
        info.bytes += b;
        if (stats != nullptr) {
          stats->add(b, paper_bits(s, p->instance(0).top_level(),
                                   p->instance(0).top_level()));
        }
      }
      by_party.push_back(std::move(snaps));
    } else {
      std::vector<core::DistinctSnapshot> decoded(snaps.size());
      for (std::size_t i = 0; i < snaps.size(); ++i) {
        const Bytes enc = encode(snaps[i]);
        ++info.messages;
        info.bytes += enc.size();
        if (stats != nullptr) {
          stats->add(enc.size(), static_cast<double>(enc.size()) * 8.0);
        }
        const bool ok = decode(enc, decoded[i]);
        if (!ok) ++info.decode_failures;
        assert(ok && "wire round-trip must succeed");
      }
      by_party.push_back(std::move(decoded));
    }
  }
  return by_party;
}

QueryResult union_count(CountSnapshotSource& source, std::uint64_t n,
                        WireStats* stats) {
  const RoundMetrics metrics = RoundMetrics::make(
      "protocol=\"union\",transport=\"" + std::string(source.transport()) +
      "\"");
  // The round span roots the query's trace (or joins an enclosing one);
  // the ambient scope lets the transport's fan-out — and, over TCP, the
  // parties' server-side spans — stitch under it.
  auto span = obs::Tracer::instance().start_auto("referee.union_count" +
                                                 span_suffix(source.transport()));
  const obs::TraceScope trace_scope(span.context());
  QueryResult r;
  if (source.party_count() == 0) {
    r.error = "union counting: no parties configured";
    return r;
  }
  CollectStats info;
  auto by_party = source.collect(n, r.missing, stats, info);
  span.set("missing", static_cast<double>(r.missing.size()));
  if (!r.missing.empty()) {
    finish_round(metrics, span, source.party_count(), info);
    r.error = quorum_error("union counting", r.missing);
    r.estimate = core::Estimate{0.0, false, n};
    return r;
  }
  const int workers = combine_workers(source.instances());
  r.estimate = combine_median(
      by_party, source.instances(), n, workers,
      [&](std::span<const core::RandWaveSnapshot> inst, int i) {
        return core::referee_union_count(inst, n, source.hash(i)).value;
      });
  span.set("combine_workers", static_cast<double>(workers));
  metrics.combine_workers.add(static_cast<std::uint64_t>(workers));
  r.status = QueryStatus::kOk;
  finish_round(metrics, span, source.party_count(), info);
  return r;
}

QueryResult distinct_count(DistinctSnapshotSource& source, std::uint64_t n,
                           WireStats* stats,
                           const std::function<bool(std::uint64_t)>& predicate) {
  const RoundMetrics metrics = RoundMetrics::make(
      "protocol=\"distinct\",transport=\"" + std::string(source.transport()) +
      "\"");
  auto span = obs::Tracer::instance().start_auto(
      "referee.distinct_count" + span_suffix(source.transport()));
  const obs::TraceScope trace_scope(span.context());
  QueryResult r;
  if (source.party_count() == 0) {
    r.error = "distinct values: no parties configured";
    return r;
  }
  CollectStats info;
  auto by_party = source.collect(n, r.missing, stats, info);
  span.set("missing", static_cast<double>(r.missing.size()));
  if (!r.missing.empty()) {
    finish_round(metrics, span, source.party_count(), info);
    r.error = quorum_error("distinct values", r.missing);
    r.estimate = core::Estimate{0.0, false, n};
    return r;
  }
  const int workers = combine_workers(source.instances());
  r.estimate = combine_median(
      by_party, source.instances(), n, workers,
      [&](std::span<const core::DistinctSnapshot> inst, int i) {
        return core::referee_distinct_count(inst, n, source.hash(i),
                                            predicate)
            .value;
      });
  span.set("combine_workers", static_cast<double>(workers));
  metrics.combine_workers.add(static_cast<std::uint64_t>(workers));
  r.status = QueryStatus::kOk;
  finish_round(metrics, span, source.party_count(), info);
  return r;
}

core::Estimate union_count(std::span<const CountParty* const> parties,
                           std::uint64_t n, WireStats* stats) {
  InProcessCountSource source(parties, /*via_wire=*/false);
  return union_count(source, n, stats).estimate;
}

core::Estimate distinct_count(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  InProcessDistinctSource source(parties, /*via_wire=*/false);
  return distinct_count(source, n, stats, predicate).estimate;
}

core::Estimate union_count_wire(std::span<const CountParty* const> parties,
                                std::uint64_t n, WireStats* stats) {
  InProcessCountSource source(parties, /*via_wire=*/true);
  return union_count(source, n, stats).estimate;
}

core::Estimate distinct_count_wire(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats, const std::function<bool(std::uint64_t)>& predicate) {
  InProcessDistinctSource source(parties, /*via_wire=*/true);
  return distinct_count(source, n, stats, predicate).estimate;
}

}  // namespace waves::distributed
