#include "distributed/scenarios.hpp"

#include <cassert>

namespace waves::distributed {

Scenario1Counter::Scenario1Counter(int parties, std::uint64_t inv_eps,
                                   std::uint64_t window) {
  assert(parties >= 1);
  waves_.reserve(static_cast<std::size_t>(parties));
  for (int i = 0; i < parties; ++i) {
    waves_.emplace_back(inv_eps, window);
  }
}

void Scenario1Counter::observe(int party, bool bit) {
  waves_[static_cast<std::size_t>(party)].update(bit);
}

core::Estimate Scenario1Counter::estimate(std::uint64_t n) const {
  double total = 0.0;
  bool exact = true;
  for (const core::DetWave& w : waves_) {
    const core::Estimate e = w.query(n);
    total += e.value;
    exact = exact && e.exact;
  }
  return core::Estimate{total, exact, n};
}

Scenario1Summer::Scenario1Summer(int parties, std::uint64_t inv_eps,
                                 std::uint64_t window,
                                 std::uint64_t max_value) {
  assert(parties >= 1);
  waves_.reserve(static_cast<std::size_t>(parties));
  for (int i = 0; i < parties; ++i) {
    waves_.emplace_back(inv_eps, window, max_value);
  }
}

void Scenario1Summer::observe(int party, std::uint64_t value) {
  waves_[static_cast<std::size_t>(party)].update(value);
}

core::Estimate Scenario1Summer::estimate(std::uint64_t n) const {
  double total = 0.0;
  bool exact = true;
  for (const core::SumWave& w : waves_) {
    const core::Estimate e = w.query(n);
    total += e.value;
    exact = exact && e.exact;
  }
  return core::Estimate{total, exact, n};
}

Scenario2Counter::Scenario2Counter(int parties, std::uint64_t inv_eps,
                                   std::uint64_t window)
    : window_(window) {
  assert(parties >= 1);
  waves_.reserve(static_cast<std::size_t>(parties));
  for (int i = 0; i < parties; ++i) {
    // Positions are sequence numbers; a window of N sequence numbers holds
    // at most U = N items of this party's substream.
    waves_.emplace_back(inv_eps, window, window);
  }
}

void Scenario2Counter::observe(int party, stream::SeqBit item) {
  assert(item.seq > global_seq_ && "sequence numbers are global, increasing");
  global_seq_ = item.seq;
  waves_[static_cast<std::size_t>(party)].update(item.seq, item.bit);
}

core::Estimate Scenario2Counter::estimate(std::uint64_t n) const {
  assert(n >= 1 && n <= window_);
  if (global_seq_ == 0) return core::Estimate{0.0, true, n};
  const std::uint64_t s = global_seq_ > n ? global_seq_ - n + 1 : 1;
  double total = 0.0;
  bool exact = true;
  for (const core::TsWave& w : waves_) {
    const std::uint64_t pj = w.current_position();
    if (pj < s) continue;  // no items of this party inside the window
    const core::Estimate e = w.query(pj - s + 1);
    total += e.value;
    exact = exact && e.exact;
  }
  return core::Estimate{total, exact, n};
}

}  // namespace waves::distributed
