#include "distributed/party.hpp"

#include <cassert>
#include <chrono>

#include "util/bitops.hpp"

namespace waves::distributed {

namespace {

int count_field_dim(std::uint64_t window) {
  return util::floor_log2(
      util::next_pow2_at_least(window < 1 ? 2 : 2 * window));
}

// Acquire the party lock, timing the wait only when contended — the
// uncontended fast path costs one try_lock, no clock reads.
std::unique_lock<std::mutex> lock_tracked(std::mutex& mu,
                                          const obs::PartyObs& po) {
  std::unique_lock<std::mutex> lk(mu, std::try_to_lock);
  if (!lk.owns_lock()) {
    if constexpr (obs::kEnabled) {
      const auto t0 = std::chrono::steady_clock::now();
      lk.lock();
      po.lock_waited(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    } else {
      lk.lock();
    }
  }
  return lk;
}

// Refresh throughput/space series every 2^14 items so long ingests stay
// observable without a query; exact values land at snapshot time.
constexpr std::uint64_t kFlushMask = (1u << 14) - 1;

}  // namespace

CountParty::CountParty(const core::RandWave::Params& params, int instances,
                       std::uint64_t shared_seed)
    : field_(count_field_dim(params.window)) {
  assert(instances >= 1);
  gf2::SharedRandomness coins(shared_seed);
  waves_.reserve(static_cast<std::size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    waves_.emplace_back(params, field_, coins);
  }
}

void CountParty::observe(bool bit) {
  const auto lock = lock_tracked(mu_, obs_);
  for (core::RandWave& w : waves_) w.update(bit);
  if constexpr (obs::kEnabled) {
    const std::uint64_t n = waves_.front().pos();
    if ((n & kFlushMask) == 0) obs_.flush(n, space_bits_locked());
  }
}

void CountParty::observe_words(std::span<const std::uint64_t> words,
                               std::uint64_t count) {
  if (count == 0) return;
  const auto lock = lock_tracked(mu_, obs_);
  for (core::RandWave& w : waves_) w.update_words(words, count);
  if constexpr (obs::kEnabled) {
    obs_.flush(waves_.front().pos(), space_bits_locked());
  }
}

std::vector<core::RandWaveSnapshot> CountParty::snapshots(
    std::uint64_t n) const {
  const auto lock = lock_tracked(mu_, obs_);
  std::vector<core::RandWaveSnapshot> out;
  out.reserve(waves_.size());
  for (const core::RandWave& w : waves_) out.push_back(w.snapshot(n));
  obs_.flush(waves_.front().pos(), space_bits_locked());
  return out;
}

std::uint64_t CountParty::items_observed() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return waves_.empty() ? 0 : waves_.front().pos();
}

std::uint64_t CountParty::space_bits_locked() const noexcept {
  std::uint64_t bits = 0;
  for (const core::RandWave& w : waves_) bits += w.space_bits();
  return bits;
}

std::uint64_t CountParty::space_bits() const noexcept {
  return space_bits_locked();
}

CountPartyCheckpoint CountParty::checkpoint() const {
  const auto lock = lock_tracked(mu_, obs_);
  CountPartyCheckpoint ck;
  ck.cursor = waves_.empty() ? 0 : waves_.front().pos();
  ck.waves.reserve(waves_.size());
  for (const core::RandWave& w : waves_) ck.waves.push_back(w.checkpoint());
  return ck;
}

void CountParty::restore(const CountPartyCheckpoint& ck) {
  const auto lock = lock_tracked(mu_, obs_);
  assert(ck.waves.size() == waves_.size());
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    waves_[i].restore(ck.waves[i]);
  }
}

DistinctParty::DistinctParty(const core::DistinctWave::Params& params,
                             int instances, std::uint64_t shared_seed)
    : field_(core::DistinctWave::field_dimension(params)) {
  assert(instances >= 1);
  gf2::SharedRandomness coins(shared_seed);
  waves_.reserve(static_cast<std::size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    waves_.emplace_back(params, field_, coins);
  }
}

void DistinctParty::observe(std::uint64_t value) {
  const auto lock = lock_tracked(mu_, obs_);
  for (core::DistinctWave& w : waves_) w.update(value);
  if constexpr (obs::kEnabled) {
    const std::uint64_t n = waves_.front().pos();
    if ((n & kFlushMask) == 0) obs_.flush(n, space_bits_locked());
  }
}

void DistinctParty::observe_batch(std::span<const std::uint64_t> values) {
  if (values.empty()) return;
  const auto lock = lock_tracked(mu_, obs_);
  for (core::DistinctWave& w : waves_) w.update_batch(values);
  if constexpr (obs::kEnabled) {
    obs_.flush(waves_.front().pos(), space_bits_locked());
  }
}

std::vector<core::DistinctSnapshot> DistinctParty::snapshots(
    std::uint64_t n) const {
  const auto lock = lock_tracked(mu_, obs_);
  std::vector<core::DistinctSnapshot> out;
  out.reserve(waves_.size());
  for (const core::DistinctWave& w : waves_) out.push_back(w.snapshot(n));
  obs_.flush(waves_.front().pos(), space_bits_locked());
  return out;
}

std::uint64_t DistinctParty::items_observed() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return waves_.empty() ? 0 : waves_.front().pos();
}

std::uint64_t DistinctParty::space_bits_locked() const noexcept {
  std::uint64_t bits = 0;
  for (const core::DistinctWave& w : waves_) bits += w.space_bits();
  return bits;
}

std::uint64_t DistinctParty::space_bits() const noexcept {
  return space_bits_locked();
}

DistinctPartyCheckpoint DistinctParty::checkpoint() const {
  const auto lock = lock_tracked(mu_, obs_);
  DistinctPartyCheckpoint ck;
  ck.cursor = waves_.empty() ? 0 : waves_.front().pos();
  ck.waves.reserve(waves_.size());
  for (const core::DistinctWave& w : waves_) ck.waves.push_back(w.checkpoint());
  return ck;
}

void DistinctParty::restore(const DistinctPartyCheckpoint& ck) {
  const auto lock = lock_tracked(mu_, obs_);
  assert(ck.waves.size() == waves_.size());
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    waves_[i].restore(ck.waves[i]);
  }
}

}  // namespace waves::distributed
