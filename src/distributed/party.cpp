#include "distributed/party.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace waves::distributed {

namespace {

int count_field_dim(std::uint64_t window) {
  return util::floor_log2(
      util::next_pow2_at_least(window < 1 ? 2 : 2 * window));
}

}  // namespace

CountParty::CountParty(const core::RandWave::Params& params, int instances,
                       std::uint64_t shared_seed)
    : field_(count_field_dim(params.window)) {
  assert(instances >= 1);
  gf2::SharedRandomness coins(shared_seed);
  waves_.reserve(static_cast<std::size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    waves_.emplace_back(params, field_, coins);
  }
}

void CountParty::observe(bool bit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (core::RandWave& w : waves_) w.update(bit);
}

std::vector<core::RandWaveSnapshot> CountParty::snapshots(
    std::uint64_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::RandWaveSnapshot> out;
  out.reserve(waves_.size());
  for (const core::RandWave& w : waves_) out.push_back(w.snapshot(n));
  return out;
}

std::uint64_t CountParty::items_observed() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return waves_.empty() ? 0 : waves_.front().pos();
}

std::uint64_t CountParty::space_bits() const noexcept {
  std::uint64_t bits = 0;
  for (const core::RandWave& w : waves_) bits += w.space_bits();
  return bits;
}

DistinctParty::DistinctParty(const core::DistinctWave::Params& params,
                             int instances, std::uint64_t shared_seed)
    : field_(core::DistinctWave::field_dimension(params)) {
  assert(instances >= 1);
  gf2::SharedRandomness coins(shared_seed);
  waves_.reserve(static_cast<std::size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    waves_.emplace_back(params, field_, coins);
  }
}

void DistinctParty::observe(std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (core::DistinctWave& w : waves_) w.update(value);
}

std::vector<core::DistinctSnapshot> DistinctParty::snapshots(
    std::uint64_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::DistinctSnapshot> out;
  out.reserve(waves_.size());
  for (const core::DistinctWave& w : waves_) out.push_back(w.snapshot(n));
  return out;
}

std::uint64_t DistinctParty::items_observed() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return waves_.empty() ? 0 : waves_.front().pos();
}

std::uint64_t DistinctParty::space_bits() const noexcept {
  std::uint64_t bits = 0;
  for (const core::DistinctWave& w : waves_) bits += w.space_bits();
  return bits;
}

}  // namespace waves::distributed
