#include "distributed/ingest_driver.hpp"

#include <cassert>
#include <chrono>
#include <thread>

namespace waves::distributed {

namespace {

template <class Party, class Item>
FeedResult feed_impl(std::span<Party* const> parties,
                     const std::vector<std::vector<Item>>& streams) {
  assert(parties.size() == streams.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(parties.size());
    for (std::size_t i = 0; i < parties.size(); ++i) {
      threads.emplace_back([p = parties[i], &s = streams[i]] {
        for (const auto& item : s) p->observe(item);
      });
    }
  }  // jthreads join here
  const auto t1 = std::chrono::steady_clock::now();

  std::uint64_t items = 0;
  for (const auto& s : streams) items += s.size();
  return FeedResult{std::chrono::duration<double>(t1 - t0).count(), items};
}

}  // namespace

FeedResult parallel_feed(std::span<CountParty* const> parties,
                         const std::vector<std::vector<bool>>& streams) {
  return feed_impl(parties, streams);
}

FeedResult parallel_feed(
    std::span<DistinctParty* const> parties,
    const std::vector<std::vector<std::uint64_t>>& streams) {
  return feed_impl(parties, streams);
}

}  // namespace waves::distributed
