#include "distributed/ingest_driver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace waves::distributed {

namespace {

// Lock-hold bound per observe_* call: a Referee querying mid-feed waits at
// most one chunk, not the whole stream.
constexpr std::uint64_t kChunkBits = 64 * 1024;       // 1024 words
constexpr std::size_t kChunkValues = 64 * 1024;

// Runs `feed(party, stream)` for each (party, stream) pair on its own
// thread, timing each; `size(stream)` items are credited to that party.
template <class Party, class Stream, class FeedFn, class SizeFn>
FeedResult feed_impl(std::span<Party* const> parties,
                     const std::vector<Stream>& streams, FeedFn feed,
                     SizeFn size) {
  assert(parties.size() == streams.size());
  FeedResult r;
  r.per_party.resize(parties.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(parties.size());
    for (std::size_t i = 0; i < parties.size(); ++i) {
      threads.emplace_back(
          [p = parties[i], &s = streams[i], &pp = r.per_party[i], feed,
           size] {
            const auto f0 = std::chrono::steady_clock::now();
            feed(p, s);
            pp.items = size(s);
            pp.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - f0)
                             .count();
          });
    }
  }  // jthreads join here
  const auto t1 = std::chrono::steady_clock::now();

  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& pp : r.per_party) r.items += pp.items;

  if constexpr (obs::kEnabled) {
    obs::Registry& reg = obs::Registry::instance();
    for (std::size_t i = 0; i < parties.size(); ++i) {
      const std::string labels =
          "party=\"" + std::to_string(parties[i]->obs_id()) + "\"";
      reg.counter("waves_feed_items_total", labels)
          .add(r.per_party[i].items);
      reg.gauge("waves_feed_rate_items_per_sec", labels)
          .set(r.per_party[i].items_per_sec());
    }
  }
  return r;
}

}  // namespace

double FeedResult::rate_skew() const noexcept {
  double lo = 0.0, hi = 0.0;
  for (const PartyFeed& pp : per_party) {
    const double rate = pp.items_per_sec();
    if (rate <= 0.0) continue;
    if (lo == 0.0 || rate < lo) lo = rate;
    if (rate > hi) hi = rate;
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

FeedResult parallel_feed(std::span<CountParty* const> parties,
                         const std::vector<util::PackedBitStream>& streams) {
  return feed_impl(
      parties, streams,
      [](CountParty* p, const util::PackedBitStream& s) {
        const std::span<const std::uint64_t> words = s.words();
        for (std::uint64_t off = 0; off < s.size(); off += kChunkBits) {
          const std::uint64_t nbits = std::min(kChunkBits, s.size() - off);
          p->observe_words(words.subspan(off / 64, (nbits + 63) / 64), nbits);
        }
      },
      [](const util::PackedBitStream& s) { return s.size(); });
}

namespace {

// Shared recv_for drain loop: one wait per tick, stop honored between
// batches, exit once the channel reports drained (closed + empty).
template <class Batch, class Party, class FeedFn, class SizeFn>
std::uint64_t channel_feed_impl(Channel<Batch>& ch, Party& party,
                                const std::atomic<bool>& stop,
                                std::chrono::milliseconds tick, FeedFn feed,
                                SizeFn size) {
  std::uint64_t items = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    std::optional<Batch> batch = ch.recv_for(tick);
    if (!batch) {
      if (ch.drained()) break;
      continue;  // timeout: poll `stop` and wait again
    }
    feed(party, *batch);
    items += size(*batch);
  }
  return items;
}

}  // namespace

std::uint64_t channel_feed(Channel<util::PackedBitStream>& ch,
                           CountParty& party, const std::atomic<bool>& stop,
                           std::chrono::milliseconds tick) {
  return channel_feed_impl(
      ch, party, stop, tick,
      [](CountParty& p, const util::PackedBitStream& b) {
        p.observe_batch(b);
      },
      [](const util::PackedBitStream& b) { return b.size(); });
}

std::uint64_t channel_feed(Channel<std::vector<std::uint64_t>>& ch,
                           DistinctParty& party,
                           const std::atomic<bool>& stop,
                           std::chrono::milliseconds tick) {
  return channel_feed_impl(
      ch, party, stop, tick,
      [](DistinctParty& p, const std::vector<std::uint64_t>& b) {
        p.observe_batch(b);
      },
      [](const std::vector<std::uint64_t>& b) {
        return static_cast<std::uint64_t>(b.size());
      });
}

FeedResult parallel_feed(
    std::span<DistinctParty* const> parties,
    const std::vector<std::vector<std::uint64_t>>& streams) {
  return feed_impl(
      parties, streams,
      [](DistinctParty* p, const std::vector<std::uint64_t>& s) {
        const std::span<const std::uint64_t> vals(s);
        for (std::size_t off = 0; off < s.size(); off += kChunkValues) {
          p->observe_batch(
              vals.subspan(off, std::min(kChunkValues, s.size() - off)));
        }
      },
      [](const std::vector<std::uint64_t>& s) {
        return static_cast<std::uint64_t>(s.size());
      });
}

}  // namespace waves::distributed
