#include "distributed/ingest_driver.hpp"

#include <cassert>
#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace waves::distributed {

namespace {

template <class Party, class Item>
FeedResult feed_impl(std::span<Party* const> parties,
                     const std::vector<std::vector<Item>>& streams) {
  assert(parties.size() == streams.size());
  FeedResult r;
  r.per_party.resize(parties.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(parties.size());
    for (std::size_t i = 0; i < parties.size(); ++i) {
      threads.emplace_back(
          [p = parties[i], &s = streams[i], &pp = r.per_party[i]] {
            const auto f0 = std::chrono::steady_clock::now();
            for (const auto& item : s) p->observe(item);
            pp.items = s.size();
            pp.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - f0)
                             .count();
          });
    }
  }  // jthreads join here
  const auto t1 = std::chrono::steady_clock::now();

  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& pp : r.per_party) r.items += pp.items;

  if constexpr (obs::kEnabled) {
    obs::Registry& reg = obs::Registry::instance();
    for (std::size_t i = 0; i < parties.size(); ++i) {
      const std::string labels =
          "party=\"" + std::to_string(parties[i]->obs_id()) + "\"";
      reg.counter("waves_feed_items_total", labels)
          .add(r.per_party[i].items);
      reg.gauge("waves_feed_rate_items_per_sec", labels)
          .set(r.per_party[i].items_per_sec());
    }
  }
  return r;
}

}  // namespace

double FeedResult::rate_skew() const noexcept {
  double lo = 0.0, hi = 0.0;
  for (const PartyFeed& pp : per_party) {
    const double rate = pp.items_per_sec();
    if (rate <= 0.0) continue;
    if (lo == 0.0 || rate < lo) lo = rate;
    if (rate > hi) hi = rate;
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

FeedResult parallel_feed(std::span<CountParty* const> parties,
                         const std::vector<std::vector<bool>>& streams) {
  return feed_impl(parties, streams);
}

FeedResult parallel_feed(
    std::span<DistinctParty* const> parties,
    const std::vector<std::vector<std::uint64_t>>& streams) {
  return feed_impl(parties, streams);
}

}  // namespace waves::distributed
