// The Referee (Sec. 2, Fig. 6, Sec. 5).
//
// When an estimate is requested, every party sends one message per
// median-estimator instance; the Referee combines each instance across
// parties (Fig. 6 steps 2-3 for Union Counting, levelwise union for
// distinct values) and returns the median over instances. Communication is
// metered into WireStats.
//
// The estimation pipeline is transport-agnostic: a SnapshotSource hands the
// Referee per-party snapshot vectors plus the shared hash, and the same
// combine/median code serves the in-process direct path, the in-process
// wire-encoded path, and the TCP path (src/net/client.hpp). Sources report
// parties that could not answer; the randomized protocols *fail closed*
// under partial quorum (a missing party's stream is simply unknown — Fig. 6
// needs every queue to form l*), yielding a typed QueryResult error rather
// than a silently wrong estimate.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/wave_common.hpp"
#include "distributed/message.hpp"
#include "distributed/party.hpp"
#include "gf2/hash.hpp"

namespace waves::distributed {

enum class QueryStatus {
  kOk,        // full quorum, paper accuracy guarantees hold
  kDegraded,  // partial quorum, answer covers responders only (Scenario 1)
  kFailed,    // no usable answer (union/distinct under partial quorum)
};

/// Outcome of one referee round, quorum-aware. `estimate` is meaningful for
/// kOk and kDegraded; kDegraded additionally widens the error: the true
/// answer lies in [estimate*(1-eps), estimate*(1+eps) + error_slack], where
/// error_slack bounds what the missing parties could contribute.
struct QueryResult {
  QueryStatus status = QueryStatus::kFailed;
  core::Estimate estimate{};
  std::vector<std::size_t> missing;  // party indices that did not answer
  double error_slack = 0.0;          // additive widening (kDegraded only)
  std::string error;                 // human-readable cause (kFailed)

  [[nodiscard]] bool ok() const noexcept {
    return status != QueryStatus::kFailed;
  }
};

/// Per-round transfer accounting a source fills during collect().
struct CollectStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t decode_failures = 0;
};

/// Supplies one referee round's snapshots for Union Counting. party_count
/// and instances are fixed per deployment; collect() may fail per party.
class CountSnapshotSource {
 public:
  virtual ~CountSnapshotSource() = default;
  [[nodiscard]] virtual std::size_t party_count() const = 0;
  [[nodiscard]] virtual int instances() const = 0;
  /// The shared hash of instance i (identical at every party by stored
  /// coins; the referee re-derives it from the deployment seed).
  [[nodiscard]] virtual const gf2::ExpHash& hash(int instance) const = 0;
  /// Metrics label and span suffix: "direct", "wire", or "tcp".
  [[nodiscard]] virtual const char* transport() const = 0;
  /// Per-party snapshot vectors (instances() each) for a window of n items.
  /// A party that cannot answer yields an empty vector and its index in
  /// `missing`. `stats` (optional) gets per-message WireStats accounting in
  /// the source's native encoding.
  virtual std::vector<std::vector<core::RandWaveSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing, WireStats* stats,
      CollectStats& info) = 0;
};

/// Same contract for distinct values.
class DistinctSnapshotSource {
 public:
  virtual ~DistinctSnapshotSource() = default;
  [[nodiscard]] virtual std::size_t party_count() const = 0;
  [[nodiscard]] virtual int instances() const = 0;
  [[nodiscard]] virtual const gf2::ExpHash& hash(int instance) const = 0;
  [[nodiscard]] virtual const char* transport() const = 0;
  virtual std::vector<std::vector<core::DistinctSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing, WireStats* stats,
      CollectStats& info) = 0;
};

/// In-process sources over live parties: `via_wire` routes every snapshot
/// through the byte codec (encode party-side, decode referee-side) so the
/// real message sizes are measured; round-trips are exact either way.
class InProcessCountSource final : public CountSnapshotSource {
 public:
  InProcessCountSource(std::span<const CountParty* const> parties,
                       bool via_wire);
  [[nodiscard]] std::size_t party_count() const override;
  [[nodiscard]] int instances() const override;
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override;
  [[nodiscard]] const char* transport() const override;
  std::vector<std::vector<core::RandWaveSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing, WireStats* stats,
      CollectStats& info) override;

 private:
  std::span<const CountParty* const> parties_;
  bool via_wire_;
};

class InProcessDistinctSource final : public DistinctSnapshotSource {
 public:
  InProcessDistinctSource(std::span<const DistinctParty* const> parties,
                          bool via_wire);
  [[nodiscard]] std::size_t party_count() const override;
  [[nodiscard]] int instances() const override;
  [[nodiscard]] const gf2::ExpHash& hash(int instance) const override;
  [[nodiscard]] const char* transport() const override;
  std::vector<std::vector<core::DistinctSnapshot>> collect(
      std::uint64_t n, std::vector<std::size_t>& missing, WireStats* stats,
      CollectStats& info) override;

 private:
  std::span<const DistinctParty* const> parties_;
  bool via_wire_;
};

/// Union Counting / distinct values from any snapshot source. Fails closed
/// (QueryStatus::kFailed) when any party is missing. All transports produce
/// bit-identical estimates for the same snapshots.
[[nodiscard]] QueryResult union_count(CountSnapshotSource& source,
                                      std::uint64_t n,
                                      WireStats* stats = nullptr);
[[nodiscard]] QueryResult distinct_count(
    DistinctSnapshotSource& source, std::uint64_t n,
    WireStats* stats = nullptr,
    const std::function<bool(std::uint64_t)>& predicate = {});

/// Union Counting over the positionwise OR of the parties' streams
/// (Scenario 3), window of n <= N items. All parties must have observed
/// the same number of items.
[[nodiscard]] core::Estimate union_count(
    std::span<const CountParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr);

/// Distinct values in the window of the union of the parties' streams.
/// `predicate` (optional) restricts to values satisfying it.
[[nodiscard]] core::Estimate distinct_count(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr,
    const std::function<bool(std::uint64_t)>& predicate = {});

/// Same protocols, but every message actually traverses the wire format
/// (distributed/wire.hpp): snapshots are varint/delta encoded party-side
/// and decoded referee-side; `stats` (when set) records the real encoded
/// sizes. Estimates are bit-identical to the direct variants.
[[nodiscard]] core::Estimate union_count_wire(
    std::span<const CountParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr);

[[nodiscard]] core::Estimate distinct_count_wire(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr,
    const std::function<bool(std::uint64_t)>& predicate = {});

}  // namespace waves::distributed
