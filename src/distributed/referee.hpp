// The Referee (Sec. 2, Fig. 6, Sec. 5).
//
// When an estimate is requested, every party sends one message per
// median-estimator instance; the Referee combines each instance across
// parties (Fig. 6 steps 2-3 for Union Counting, levelwise union for
// distinct values) and returns the median over instances. Communication is
// metered into WireStats.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/wave_common.hpp"
#include "distributed/message.hpp"
#include "distributed/party.hpp"

namespace waves::distributed {

/// Union Counting over the positionwise OR of the parties' streams
/// (Scenario 3), window of n <= N items. All parties must have observed
/// the same number of items.
[[nodiscard]] core::Estimate union_count(
    std::span<const CountParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr);

/// Distinct values in the window of the union of the parties' streams.
/// `predicate` (optional) restricts to values satisfying it.
[[nodiscard]] core::Estimate distinct_count(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr,
    const std::function<bool(std::uint64_t)>& predicate = {});

/// Same protocols, but every message actually traverses the wire format
/// (distributed/wire.hpp): snapshots are varint/delta encoded party-side
/// and decoded referee-side; `stats` (when set) records the real encoded
/// sizes. Estimates are bit-identical to the direct variants.
[[nodiscard]] core::Estimate union_count_wire(
    std::span<const CountParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr);

[[nodiscard]] core::Estimate distinct_count_wire(
    std::span<const DistinctParty* const> parties, std::uint64_t n,
    WireStats* stats = nullptr,
    const std::function<bool(std::uint64_t)>& predicate = {});

}  // namespace waves::distributed
