// The three sliding-window definitions over distributed streams (Sec. 3.4).
//
// Scenario 1 — total over per-stream windows: each party runs the single-
// stream deterministic wave; the Referee sums the t estimates (each within
// eps, hence so is the sum).
//
// Scenario 2 — one logical stream split across parties: items carry the
// overall sequence number; at query time the Referee broadcasts the
// current sequence number pos, and each party estimates how many of *its*
// items have sequence numbers in [pos - N + 1, pos] using the duplicated-
// position wave over sequence numbers (the interval is guaranteed to lie
// within its last N observed items; Corollary 1 applies).
//
// Scenario 3 — positionwise union: deterministically impossible in
// sublinear space (Theorem 4); solved by the randomized wave protocol in
// distributed/referee.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/det_wave.hpp"
#include "core/sum_wave.hpp"
#include "core/ts_wave.hpp"
#include "core/wave_common.hpp"
#include "stream/types.hpp"

namespace waves::distributed {

/// Scenario 1: t independent streams, each with its own window of N items.
class Scenario1Counter {
 public:
  Scenario1Counter(int parties, std::uint64_t inv_eps, std::uint64_t window);

  void observe(int party, bool bit);

  /// Sum of the per-stream window counts (window of n <= N per stream).
  [[nodiscard]] core::Estimate estimate(std::uint64_t n) const;

  [[nodiscard]] const core::DetWave& party(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<core::DetWave> waves_;
};

/// Scenario 1 for sums (Theorem 3 per party): t independent value streams,
/// each with its own window; the Referee adds the per-stream sum-wave
/// estimates, so the total is within eps as well. This is the in-process
/// reference for the network "sum" role (net::SumPartyState + NetReferee).
class Scenario1Summer {
 public:
  Scenario1Summer(int parties, std::uint64_t inv_eps, std::uint64_t window,
                  std::uint64_t max_value);

  void observe(int party, std::uint64_t value);

  /// Sum of the per-stream window sums (window of n <= N per stream).
  [[nodiscard]] core::Estimate estimate(std::uint64_t n) const;

  [[nodiscard]] const core::SumWave& party(int i) const {
    return waves_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<core::SumWave> waves_;
};

/// Scenario 2: one logical stream of N-item windows, split across parties.
class Scenario2Counter {
 public:
  Scenario2Counter(int parties, std::uint64_t inv_eps, std::uint64_t window);

  /// Deliver item (seq, bit) to `party`. Sequence numbers are global and
  /// strictly increasing across the whole logical stream.
  void observe(int party, stream::SeqBit item);

  /// Count of 1s among the last n <= N items of the logical stream. The
  /// Referee broadcasts the current sequence number to all parties.
  [[nodiscard]] core::Estimate estimate(std::uint64_t n) const;

  [[nodiscard]] std::uint64_t logical_length() const noexcept {
    return global_seq_;
  }

 private:
  std::uint64_t window_;
  std::uint64_t global_seq_ = 0;
  std::vector<core::TsWave> waves_;
};

}  // namespace waves::distributed
