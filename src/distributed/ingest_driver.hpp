// Multi-threaded ingestion: one thread per party (the "physically
// distributed, parallel data streams" of the paper's motivation), with the
// Referee querying from the caller's thread. Used by the examples and the
// E12 throughput experiment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "distributed/party.hpp"

namespace waves::distributed {

struct FeedResult {
  double seconds = 0.0;
  std::uint64_t items = 0;
  [[nodiscard]] double items_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

/// Feed bit stream i into party i, all parties in parallel; returns wall
/// time and total items. Streams must be pre-materialized and equal-length
/// for positionwise alignment (Scenario 3 queries need aligned lengths).
FeedResult parallel_feed(std::span<CountParty* const> parties,
                         const std::vector<std::vector<bool>>& streams);

/// Same for value streams into distinct-values parties.
FeedResult parallel_feed(std::span<DistinctParty* const> parties,
                         const std::vector<std::vector<std::uint64_t>>& streams);

}  // namespace waves::distributed
