// Multi-threaded ingestion: one thread per party (the "physically
// distributed, parallel data streams" of the paper's motivation), with the
// Referee querying from the caller's thread. Used by the examples and the
// E12 throughput experiment. Each feed thread is timed individually, so
// FeedResult exposes per-party throughput and skew alongside the aggregate;
// the same numbers feed the waves_feed_* metrics (obs/metrics.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "distributed/channel.hpp"
#include "distributed/party.hpp"
#include "util/packed_bits.hpp"

namespace waves::distributed {

/// One feed thread's share of a parallel_feed call.
struct PartyFeed {
  std::uint64_t items = 0;
  double seconds = 0.0;
  [[nodiscard]] double items_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

struct FeedResult {
  double seconds = 0.0;
  std::uint64_t items = 0;
  std::vector<PartyFeed> per_party;  // indexed like the parties span

  [[nodiscard]] double items_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
  /// Fastest party rate over slowest (1.0 when uniform or degenerate) —
  /// the per-party skew a load balancer would care about.
  [[nodiscard]] double rate_skew() const noexcept;
};

/// Feed packed bit stream i into party i, all parties in parallel; returns
/// wall time, total items, and per-party timings. Streams must be
/// pre-materialized and equal-length for positionwise alignment
/// (Scenario 3 queries need aligned lengths). Each thread feeds its party
/// through observe_words in word-aligned chunks of ~64Ki bits, so a Referee
/// querying concurrently acquires the party lock between chunks rather than
/// once per bit (or never, if the whole stream were one batch).
FeedResult parallel_feed(std::span<CountParty* const> parties,
                         const std::vector<util::PackedBitStream>& streams);

/// Same for value streams into distinct-values parties; chunked through
/// observe_batch (64Ki values per lock acquisition).
FeedResult parallel_feed(std::span<DistinctParty* const> parties,
                         const std::vector<std::vector<std::uint64_t>>& streams);

/// Streaming ingest off a channel (the `waved` daemon's stdin path): drain
/// batches into the party until the channel closes and empties or `stop`
/// becomes true. Waits at most `tick` per recv_for, so a shutdown request
/// is honored within one tick even when the producer goes quiet without
/// ever closing the channel. Returns the number of items ingested.
std::uint64_t channel_feed(
    Channel<util::PackedBitStream>& ch, CountParty& party,
    const std::atomic<bool>& stop,
    std::chrono::milliseconds tick = std::chrono::milliseconds(50));

std::uint64_t channel_feed(
    Channel<std::vector<std::uint64_t>>& ch, DistinctParty& party,
    const std::atomic<bool>& stop,
    std::chrono::milliseconds tick = std::chrono::milliseconds(50));

}  // namespace waves::distributed
