#include "distributed/wire.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace waves::distributed {

namespace {

// Every decode failure is counted; the referee's per-round span carries the
// same signal as a decode_failures attribute.
bool decode_fail() {
  static const obs::Counter& errors =
      obs::Registry::instance().counter("waves_wire_decode_errors_total");
  errors.add();
  return false;
}

}  // namespace

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(const Bytes& in, std::size_t& at, std::uint64_t& v) {
  // A canonical 64-bit varint spans at most 10 bytes; the 10th (shift 63)
  // may carry only the single remaining bit. Non-canonical input — overlong
  // zero-padding or overflow bits past 64 — is a decode failure, not a
  // silent truncation: the value a sender meant and the value we'd compute
  // would differ, which for snapshot positions means a wrong estimate.
  v = 0;
  std::size_t p = at;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p >= in.size()) return decode_fail();  // truncated
    const std::uint8_t b = in[p++];
    if (shift == 63 && (b & 0xFEu) != 0) return decode_fail();  // overflow
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      if (b == 0 && shift != 0) return decode_fail();  // overlong padding
      at = p;
      return true;
    }
  }
  return decode_fail();  // continuation bit set on the 10th byte
}

void put_fixed64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

bool get_fixed64(const Bytes& in, std::size_t& at, std::uint64_t& v) {
  if (in.size() - at < 8 || at > in.size()) return decode_fail();
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  at += 8;
  return true;
}

void encode_into(Bytes& out, const core::RandWaveSnapshot& s) {
  put_varint(out, static_cast<std::uint64_t>(s.level));
  put_varint(out, s.stream_len);
  put_varint(out, s.positions.size());
  // Positions arrive oldest-first (sorted ascending): delta-encode.
  std::uint64_t prev = 0;
  for (std::uint64_t p : s.positions) {
    put_varint(out, p - prev);
    prev = p;
  }
}

Bytes encode(const core::RandWaveSnapshot& s) {
  Bytes out;
  encode_into(out, s);
  return out;
}

bool decode(const Bytes& in, core::RandWaveSnapshot& out) {
  // Decode into a scratch snapshot so a truncated or corrupt message never
  // leaves a partial result in `out`. Varint failures are already counted
  // by get_varint; only failures it cannot see count here.
  core::RandWaveSnapshot tmp;
  std::size_t at = 0;
  std::uint64_t level = 0, count = 0;
  if (!get_varint(in, at, level)) return false;
  if (!get_varint(in, at, tmp.stream_len)) return false;
  if (!get_varint(in, at, count)) return false;
  // Every position costs at least one byte: reject counts the remaining
  // input cannot possibly hold (also bounds the reserve below, so corrupt
  // input cannot trigger huge allocations).
  if (count > in.size() - at) return decode_fail();
  tmp.level = static_cast<int>(level);
  tmp.positions.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t d = 0;
    if (!get_varint(in, at, d)) return false;
    prev += d;
    tmp.positions.push_back(prev);
  }
  if (at != in.size()) return decode_fail();
  out = std::move(tmp);
  return true;
}

void encode_into(Bytes& out, const core::DistinctSnapshot& s) {
  put_varint(out, static_cast<std::uint64_t>(s.level));
  put_varint(out, s.stream_len);
  put_varint(out, s.items.size());
  // Items arrive oldest-position-first: delta-encode positions, raw values.
  std::uint64_t prev = 0;
  for (const auto& [value, pos] : s.items) {
    put_varint(out, pos - prev);
    prev = pos;
    put_varint(out, value);
  }
}

Bytes encode(const core::DistinctSnapshot& s) {
  Bytes out;
  encode_into(out, s);
  return out;
}

bool decode(const Bytes& in, core::DistinctSnapshot& out) {
  core::DistinctSnapshot tmp;
  std::size_t at = 0;
  std::uint64_t level = 0, count = 0;
  if (!get_varint(in, at, level)) return false;
  if (!get_varint(in, at, tmp.stream_len)) return false;
  if (!get_varint(in, at, count)) return false;
  // Each item costs at least two bytes (delta + value varints).
  if (count > (in.size() - at) / 2) return decode_fail();
  tmp.level = static_cast<int>(level);
  tmp.items.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t d = 0, value = 0;
    if (!get_varint(in, at, d)) return false;
    if (!get_varint(in, at, value)) return false;
    prev += d;
    tmp.items.emplace_back(value, prev);
  }
  if (at != in.size()) return decode_fail();
  out = std::move(tmp);
  return true;
}

namespace {

// Shared shape of the two snapshot-vector codecs: count, then each
// instance's single-snapshot encoding behind a length prefix. The scratch
// for one instance's encoding is per-thread so steady-state queries stop
// allocating once its capacity covers the largest instance seen.
template <class Snapshot>
void encode_vec_into(Bytes& out, std::span<const Snapshot> snaps) {
  static thread_local Bytes one;
  put_varint(out, snaps.size());
  for (const Snapshot& s : snaps) {
    one.clear();
    encode_into(one, s);
    put_varint(out, one.size());
    out.insert(out.end(), one.begin(), one.end());
  }
}

template <class Snapshot>
bool decode_vec(const Bytes& in, std::vector<Snapshot>& out) {
  std::size_t at = 0;
  std::uint64_t count = 0;
  if (!get_varint(in, at, count)) return false;
  // Each instance costs at least one length byte. That only caps `count`
  // at the payload size (up to the 64 MiB frame limit), so grow the vector
  // as entries actually decode instead of preallocating `count` snapshots —
  // a corrupt count must not buy a multi-GB allocation up front.
  if (count > in.size() - at) return decode_fail();
  std::vector<Snapshot> tmp;
  tmp.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 64)));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    if (!get_varint(in, at, len)) return false;
    if (len > in.size() - at) return decode_fail();
    const Bytes one(in.begin() + static_cast<std::ptrdiff_t>(at),
                    in.begin() + static_cast<std::ptrdiff_t>(at + len));
    Snapshot s;
    if (!decode(one, s)) return false;
    tmp.push_back(std::move(s));
    at += len;
  }
  if (at != in.size()) return decode_fail();
  out = std::move(tmp);
  return true;
}

}  // namespace

void encode_into(Bytes& out, std::span<const core::RandWaveSnapshot> snaps) {
  encode_vec_into(out, snaps);
}

void encode_into(Bytes& out, std::span<const core::DistinctSnapshot> snaps) {
  encode_vec_into(out, snaps);
}

Bytes encode(std::span<const core::RandWaveSnapshot> snaps) {
  Bytes out;
  encode_vec_into(out, snaps);
  return out;
}

bool decode_snapshots(const Bytes& in,
                      std::vector<core::RandWaveSnapshot>& out) {
  return decode_vec(in, out);
}

Bytes encode(std::span<const core::DistinctSnapshot> snaps) {
  Bytes out;
  encode_vec_into(out, snaps);
  return out;
}

bool decode_snapshots(const Bytes& in,
                      std::vector<core::DistinctSnapshot>& out) {
  return decode_vec(in, out);
}

}  // namespace waves::distributed
