#include "distributed/wire.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace waves::distributed {

namespace {

// Every decode failure is counted; the referee's per-round span carries the
// same signal as a decode_failures attribute.
bool decode_fail() {
  static const obs::Counter& errors =
      obs::Registry::instance().counter("waves_wire_decode_errors_total");
  errors.add();
  return false;
}

}  // namespace

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(const Bytes& in, std::size_t& at, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (at < in.size() && shift < 64) {
    const std::uint8_t b = in[at++];
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return true;
    shift += 7;
  }
  return false;
}

Bytes encode(const core::RandWaveSnapshot& s) {
  Bytes out;
  put_varint(out, static_cast<std::uint64_t>(s.level));
  put_varint(out, s.stream_len);
  put_varint(out, s.positions.size());
  // Positions arrive oldest-first (sorted ascending): delta-encode.
  std::uint64_t prev = 0;
  for (std::uint64_t p : s.positions) {
    put_varint(out, p - prev);
    prev = p;
  }
  return out;
}

bool decode(const Bytes& in, core::RandWaveSnapshot& out) {
  // Decode into a scratch snapshot so a truncated or corrupt message never
  // leaves a partial result in `out`.
  core::RandWaveSnapshot tmp;
  std::size_t at = 0;
  std::uint64_t level = 0, count = 0;
  if (!get_varint(in, at, level)) return decode_fail();
  if (!get_varint(in, at, tmp.stream_len)) return decode_fail();
  if (!get_varint(in, at, count)) return decode_fail();
  // Every position costs at least one byte: reject counts the remaining
  // input cannot possibly hold (also bounds the reserve below, so corrupt
  // input cannot trigger huge allocations).
  if (count > in.size() - at) return decode_fail();
  tmp.level = static_cast<int>(level);
  tmp.positions.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t d = 0;
    if (!get_varint(in, at, d)) return decode_fail();
    prev += d;
    tmp.positions.push_back(prev);
  }
  if (at != in.size()) return decode_fail();
  out = std::move(tmp);
  return true;
}

Bytes encode(const core::DistinctSnapshot& s) {
  Bytes out;
  put_varint(out, static_cast<std::uint64_t>(s.level));
  put_varint(out, s.stream_len);
  put_varint(out, s.items.size());
  // Items arrive oldest-position-first: delta-encode positions, raw values.
  std::uint64_t prev = 0;
  for (const auto& [value, pos] : s.items) {
    put_varint(out, pos - prev);
    prev = pos;
    put_varint(out, value);
  }
  return out;
}

bool decode(const Bytes& in, core::DistinctSnapshot& out) {
  core::DistinctSnapshot tmp;
  std::size_t at = 0;
  std::uint64_t level = 0, count = 0;
  if (!get_varint(in, at, level)) return decode_fail();
  if (!get_varint(in, at, tmp.stream_len)) return decode_fail();
  if (!get_varint(in, at, count)) return decode_fail();
  // Each item costs at least two bytes (delta + value varints).
  if (count > (in.size() - at) / 2) return decode_fail();
  tmp.level = static_cast<int>(level);
  tmp.items.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t d = 0, value = 0;
    if (!get_varint(in, at, d)) return decode_fail();
    if (!get_varint(in, at, value)) return decode_fail();
    prev += d;
    tmp.items.emplace_back(value, prev);
  }
  if (at != in.size()) return decode_fail();
  out = std::move(tmp);
  return true;
}

}  // namespace waves::distributed
