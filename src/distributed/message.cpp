#include "distributed/message.hpp"

#include <cmath>

namespace waves::distributed {

std::uint64_t wire_bytes(const core::RandWaveSnapshot& s) {
  return 4 + 8 + 4 + 8 * s.positions.size();
}

double paper_bits(const core::RandWaveSnapshot& s, int pos_bits) {
  return static_cast<double>(s.positions.size()) * pos_bits +
         std::ceil(std::log2(static_cast<double>(pos_bits) + 2.0)) + pos_bits;
}

std::uint64_t wire_bytes(const core::DistinctSnapshot& s) {
  return 4 + 8 + 4 + 16 * s.items.size();
}

double paper_bits(const core::DistinctSnapshot& s, int pos_bits,
                  int value_bits) {
  return static_cast<double>(s.items.size()) * (pos_bits + value_bits) +
         std::ceil(std::log2(static_cast<double>(pos_bits) + 2.0)) + pos_bits;
}

}  // namespace waves::distributed
