// A small typed MPSC channel for the ingestion driver and tests.
//
// The paper's model needs no streaming communication (parties talk to the
// Referee only at query time), but the simulation harness uses channels to
// pump generated stream items into party threads and to exercise the
// query protocol under concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace waves::distributed {

template <class T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024) : cap_(capacity) {}

  /// Blocking send; returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_send_.wait(lock, [this] { return closed_ || q_.size() < cap_; });
    if (closed_) return false;
    q_.push_back(std::move(value));
    cv_recv_.notify_one();
    return true;
  }

  /// Blocking receive; nullopt once closed and drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_recv_.wait(lock, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T out = std::move(q_.front());
    q_.pop_front();
    cv_send_.notify_one();
    return out;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_recv_.notify_all();
    cv_send_.notify_all();
  }

 private:
  std::size_t cap_;
  std::mutex mu_;
  std::condition_variable cv_send_, cv_recv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace waves::distributed
