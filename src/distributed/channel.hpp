// A small typed MPSC channel for the ingestion driver and tests.
//
// The paper's model needs no streaming communication (parties talk to the
// Referee only at query time), but the simulation harness uses channels to
// pump generated stream items into party threads and to exercise the
// query protocol under concurrency.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace waves::distributed {

template <class T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024) : cap_(capacity) {}

  /// Blocking send; returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_send_.wait(lock, [this] { return closed_ || q_.size() < cap_; });
    if (closed_) return false;
    q_.push_back(std::move(value));
    cv_recv_.notify_one();
    return true;
  }

  /// Non-blocking send: false when full or closed, and `value` is left
  /// intact so the caller can retry (or drop) after checking its own stop
  /// condition — a producer whose consumer died must not block forever.
  [[nodiscard]] bool try_send(T& value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || q_.size() >= cap_) return false;
    q_.push_back(std::move(value));
    cv_recv_.notify_one();
    return true;
  }

  /// Blocking receive; nullopt once closed and drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_recv_.wait(lock, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T out = std::move(q_.front());
    q_.pop_front();
    cv_send_.notify_one();
    return out;
  }

  /// Receive with a timeout: nullopt on timeout or once closed and
  /// drained (disambiguate with drained()). Lets a consumer poll its stop
  /// flag between waits instead of blocking indefinitely on a producer
  /// that went quiet.
  std::optional<T> recv_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_recv_.wait_for(lock, timeout,
                      [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T out = std::move(q_.front());
    q_.pop_front();
    cv_send_.notify_one();
    return out;
  }

  /// True once the channel is closed and every queued value consumed —
  /// the "no more data will ever arrive" signal recv_for cannot convey.
  [[nodiscard]] bool drained() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && q_.empty();
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_recv_.notify_all();
    cv_send_.notify_all();
  }

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable cv_send_, cv_recv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace waves::distributed
