// Channel is header-only; this TU anchors the library target.
#include "distributed/channel.hpp"
