// Wire format for party -> Referee messages.
//
// The in-process referee passes snapshot structs directly; this module
// provides the real byte encoding a deployment would ship: little-endian
// varints, positions delta-encoded within a message (they are sorted,
// oldest first, so deltas are small — the same observation behind the
// compact wave). Round-trips are exact; encoded sizes back the WireStats
// accounting and the E8/E12 communication measurements. The TCP transport
// (src/net/) frames these same encodings, so bytes-on-the-wire equals
// bytes-accounted plus a fixed per-message header.
//
// Varints are canonical: a decoder rejects overlong encodings (a non-final
// 0x80.. prefix padding) and any 10th byte carrying bits past the 64th, so
// every value has exactly one accepted byte representation. Non-canonical
// or truncated input fails the decode (counted in
// waves_wire_decode_errors_total) instead of silently truncating bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"

namespace waves::distributed {

using Bytes = std::vector<std::uint8_t>;

/// LEB128-style unsigned varint (canonical form: minimal length).
void put_varint(Bytes& out, std::uint64_t v);
/// Reads a varint at `at`, advancing it only on success. Returns false —
/// and counts waves_wire_decode_errors_total — on truncation, overlong
/// (non-canonical) encodings, and 10th-byte overflow past 64 bits.
bool get_varint(const Bytes& in, std::size_t& at, std::uint64_t& v);

/// Little-endian fixed-width 64-bit field (doubles cross the wire as bit
/// patterns through these, keeping network answers bit-identical to
/// in-process ones).
void put_fixed64(Bytes& out, std::uint64_t v);
bool get_fixed64(const Bytes& in, std::size_t& at, std::uint64_t& v);

[[nodiscard]] Bytes encode(const core::RandWaveSnapshot& s);
[[nodiscard]] bool decode(const Bytes& in, core::RandWaveSnapshot& out);

[[nodiscard]] Bytes encode(const core::DistinctSnapshot& s);
[[nodiscard]] bool decode(const Bytes& in, core::DistinctSnapshot& out);

/// Append-in-place variants of the encoders above: write into an existing
/// buffer so per-query hot paths can reuse one allocation (and its
/// high-water capacity) across rounds instead of materialising a fresh
/// Bytes per message. encode() is a thin wrapper over these.
void encode_into(Bytes& out, const core::RandWaveSnapshot& s);
void encode_into(Bytes& out, const core::DistinctSnapshot& s);
void encode_into(Bytes& out, std::span<const core::RandWaveSnapshot> snaps);
void encode_into(Bytes& out, std::span<const core::DistinctSnapshot> snaps);

/// One party's full answer to a referee snapshot request: all median-
/// estimator instances, each length-prefixed. Decode is all-or-nothing
/// (no partial output on failure), like the single-snapshot codecs.
[[nodiscard]] Bytes encode(std::span<const core::RandWaveSnapshot> snaps);
[[nodiscard]] bool decode_snapshots(const Bytes& in,
                                    std::vector<core::RandWaveSnapshot>& out);

[[nodiscard]] Bytes encode(std::span<const core::DistinctSnapshot> snaps);
[[nodiscard]] bool decode_snapshots(const Bytes& in,
                                    std::vector<core::DistinctSnapshot>& out);

}  // namespace waves::distributed
