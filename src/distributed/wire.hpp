// Wire format for party -> Referee messages.
//
// The in-process referee passes snapshot structs directly; this module
// provides the real byte encoding a deployment would ship: little-endian
// varints, positions delta-encoded within a message (they are sorted,
// oldest first, so deltas are small — the same observation behind the
// compact wave). Round-trips are exact; encoded sizes back the WireStats
// accounting and the E8/E12 communication measurements.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"

namespace waves::distributed {

using Bytes = std::vector<std::uint8_t>;

/// LEB128-style unsigned varint.
void put_varint(Bytes& out, std::uint64_t v);
/// Reads a varint at `at`, advancing it. Returns false on truncation.
bool get_varint(const Bytes& in, std::size_t& at, std::uint64_t& v);

[[nodiscard]] Bytes encode(const core::RandWaveSnapshot& s);
[[nodiscard]] bool decode(const Bytes& in, core::RandWaveSnapshot& out);

[[nodiscard]] Bytes encode(const core::DistinctSnapshot& s);
[[nodiscard]] bool decode(const Bytes& in, core::DistinctSnapshot& out);

}  // namespace waves::distributed
