// Message accounting for the distributed-streams protocol.
//
// In the paper's model parties communicate only when an estimate is
// requested: each sends one message to the Referee. The simulation is
// in-process, so "sending" is passing a snapshot struct — but every
// transfer is metered both in realistic wire bytes (fixed-width encoding)
// and in the paper's bit accounting (log N' bits per position), which is
// what Theorem 5/6's query-cost claims are checked against (E8/E12).
#pragma once

#include <cstdint>

#include "core/distinct_wave.hpp"
#include "core/rand_wave.hpp"

namespace waves::distributed {

/// Cumulative communication between the parties and the Referee.
struct WireStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;       // realistic fixed-width encoding
  double paper_bits = 0.0;       // the paper's accounting

  void add(std::uint64_t msg_bytes, double msg_paper_bits) noexcept {
    ++messages;
    bytes += msg_bytes;
    paper_bits += msg_paper_bits;
  }
};

/// Wire size of a count snapshot: level (4B) + stream length (8B) + count
/// (4B) + positions (8B each).
[[nodiscard]] std::uint64_t wire_bytes(const core::RandWaveSnapshot& s);

/// Paper accounting: positions at pos_bits each plus the level index.
[[nodiscard]] double paper_bits(const core::RandWaveSnapshot& s, int pos_bits);

[[nodiscard]] std::uint64_t wire_bytes(const core::DistinctSnapshot& s);
[[nodiscard]] double paper_bits(const core::DistinctSnapshot& s, int pos_bits,
                                int value_bits);

}  // namespace waves::distributed
