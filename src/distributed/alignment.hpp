// Stream-length alignment helper for positionwise-union queries.
//
// Scenario 3's union is positionwise, so a query is only meaningful when
// every party has observed the same number of items. Deployments with
// free-running feeders (see tools/wavesim, the concurrency tests) call
// pad_to_alignment() at a quiescent point: laggards observe trailing 0s
// (which cannot add 1s to the union) up to the longest stream.
#pragma once

#include <algorithm>
#include <span>

#include "distributed/party.hpp"

namespace waves::distributed {

/// Pads every party with 0-bits up to the longest observed length.
/// Returns the aligned length. Parties must be quiescent (no concurrent
/// feeders) during the call.
inline std::uint64_t pad_to_alignment(std::span<CountParty* const> parties) {
  std::uint64_t maxlen = 0;
  for (const CountParty* p : parties) {
    maxlen = std::max(maxlen, p->items_observed());
  }
  for (CountParty* p : parties) {
    while (p->items_observed() < maxlen) p->observe(false);
  }
  return maxlen;
}

}  // namespace waves::distributed
