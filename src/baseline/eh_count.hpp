// Exponential Histogram for Basic Counting — the Datar et al. baseline the
// deterministic wave is compared against (Sec. 2 of the paper).
//
// The k_0 most recent 1s sit in size-1 buckets, the next k_1 in size-2
// buckets, and so on; each k_i is 1/(2 eps) or 1/(2 eps) + 1. A new 1 can
// trigger a cascade of up to log N merges — the worst-case O(log N) update
// the wave's O(1) improves on — so the implementation instruments merge
// cascades per update for experiment E4.
//
// Buckets are kept in per-size-class deques (bucket sizes are powers of
// two, so a class is an exponent); a monotone arrival order stamp
// identifies the globally oldest bucket for expiry.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace waves::baseline {

class EhCount {
 public:
  /// @param inv_eps 1/eps as an integer (>= 1); relative error <= eps.
  /// @param window  maximum sliding-window size N.
  EhCount(std::uint64_t inv_eps, std::uint64_t window);

  void update(bool bit);

  /// Estimate of the number of 1s in the last N items. Exact while the
  /// stream is shorter than N.
  [[nodiscard]] double query() const;

  /// Estimate over the last n <= N items (walks the buckets).
  [[nodiscard]] double query(std::uint64_t n) const;

  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }

  /// Merges performed by the most recent update (cascade length).
  [[nodiscard]] int last_update_merges() const noexcept { return last_merges_; }
  /// Largest cascade observed so far.
  [[nodiscard]] int max_merges() const noexcept { return max_merges_; }

  [[nodiscard]] std::size_t bucket_count() const noexcept;

  /// Paper-accounting footprint: each bucket stores a size exponent
  /// (loglog bits) and a modulo-N' position (log N' bits).
  [[nodiscard]] std::uint64_t space_bits() const noexcept;

 private:
  struct Bucket {
    std::uint64_t newest_pos;
    std::uint64_t order;  // arrival stamp; larger = newer
  };

  void expire();
  /// Class index (size exponent) of the globally oldest bucket, or -1.
  [[nodiscard]] int oldest_class() const noexcept;

  std::uint64_t k_;       // ceil(inv_eps / 2): buckets allowed per class
  std::uint64_t window_;
  std::uint64_t pos_ = 0;
  std::uint64_t total_ = 0;       // sum of all bucket sizes
  std::uint64_t next_order_ = 0;
  std::vector<std::deque<Bucket>> classes_;  // classes_[e]: buckets of size 2^e
  int last_merges_ = 0;
  int max_merges_ = 0;
};

}  // namespace waves::baseline
