#include "baseline/eh_count.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace waves::baseline {

EhCount::EhCount(std::uint64_t inv_eps, std::uint64_t window)
    : k_((inv_eps + 1) / 2), window_(window) {
  assert(inv_eps >= 1 && window >= 1);
  if (k_ == 0) k_ = 1;
  // Up to log2(2 eps N) non-empty classes plus slack; sized generously once.
  classes_.resize(66);
}

int EhCount::oldest_class() const noexcept {
  int best = -1;
  std::uint64_t best_order = ~std::uint64_t{0};
  for (std::size_t e = 0; e < classes_.size(); ++e) {
    if (!classes_[e].empty() && classes_[e].front().order < best_order) {
      best_order = classes_[e].front().order;
      best = static_cast<int>(e);
    }
  }
  return best;
}

void EhCount::expire() {
  const int e = oldest_class();
  if (e < 0) return;
  const Bucket& b = classes_[static_cast<std::size_t>(e)].front();
  if (b.newest_pos + window_ <= pos_) {
    total_ -= std::uint64_t{1} << e;
    classes_[static_cast<std::size_t>(e)].pop_front();
  }
}

void EhCount::update(bool bit) {
  ++pos_;
  expire();
  if (!bit) {
    last_merges_ = 0;
    return;
  }
  classes_[0].push_back(Bucket{pos_, next_order_++});
  ++total_;
  int merges = 0;
  for (std::size_t e = 0; e + 1 < classes_.size(); ++e) {
    if (classes_[e].size() <= k_ + 1) break;
    // Merge the two oldest buckets of this class into one of double size;
    // the merged bucket keeps the newer bucket's position and order.
    const Bucket older = classes_[e].front();
    classes_[e].pop_front();
    const Bucket newer = classes_[e].front();
    classes_[e].pop_front();
    (void)older;
    // Orders in a class increase front-to-back, and successive merge
    // results of class e carry increasing orders, so the result is the
    // newest bucket of class e+1.
    assert(classes_[e + 1].empty() ||
           classes_[e + 1].back().order < newer.order);
    classes_[e + 1].push_back(Bucket{newer.newest_pos, newer.order});
    ++merges;
  }
  last_merges_ = merges;
  max_merges_ = std::max(max_merges_, merges);
}

double EhCount::query() const { return query(window_); }

double EhCount::query(std::uint64_t n) const {
  if (n > window_) n = window_;
  if (pos_ <= n) return static_cast<double>(total_);
  const std::uint64_t s = pos_ - n + 1;
  // Sum sizes of buckets fully known to be in-window; the oldest surviving
  // bucket straddles the boundary and contributes its midpoint.
  std::uint64_t sum_newer = 0;
  std::uint64_t straddle_size = 0;
  std::uint64_t straddle_order = 0;
  bool have_straddle = false;
  for (std::size_t e = 0; e < classes_.size(); ++e) {
    for (const Bucket& b : classes_[e]) {
      if (b.newest_pos < s) continue;  // entirely outside the queried window
      if (!have_straddle || b.order < straddle_order) {
        if (have_straddle) sum_newer += straddle_size;
        straddle_size = std::uint64_t{1} << e;
        straddle_order = b.order;
        have_straddle = true;
      } else {
        sum_newer += std::uint64_t{1} << e;
      }
    }
  }
  if (!have_straddle) return 0.0;
  if (straddle_size == 1) return static_cast<double>(sum_newer + 1);
  return static_cast<double>(sum_newer) +
         (1.0 + static_cast<double>(straddle_size)) / 2.0;
}

std::size_t EhCount::bucket_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.size();
  return n;
}

std::uint64_t EhCount::space_bits() const noexcept {
  const std::uint64_t np = util::next_pow2_at_least(2 * window_);
  const std::uint64_t pos_bits = static_cast<std::uint64_t>(util::floor_log2(np));
  const std::uint64_t exp_bits =
      static_cast<std::uint64_t>(util::ceil_log2(pos_bits + 1));
  return bucket_count() * (pos_bits + exp_bits) + 2 * pos_bits;
}

}  // namespace waves::baseline
