#include "baseline/eh_sum.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace waves::baseline {

EhSum::EhSum(std::uint64_t inv_eps, std::uint64_t window,
             std::uint64_t max_value)
    : k_((inv_eps + 1) / 2), window_(window), max_value_(max_value) {
  assert(inv_eps >= 1 && window >= 1);
  if (k_ == 0) k_ = 1;
  classes_.resize(130);  // sums range to N*R: up to ~127 classes
}

int EhSum::oldest_class() const noexcept {
  int best = -1;
  std::uint64_t best_order = ~std::uint64_t{0};
  for (std::size_t e = 0; e < classes_.size(); ++e) {
    if (!classes_[e].empty() && classes_[e].front().order < best_order) {
      best_order = classes_[e].front().order;
      best = static_cast<int>(e);
    }
  }
  return best;
}

void EhSum::expire() {
  // Several buckets can share one item's position (its binary
  // decomposition), so expiry may remove more than one bucket per step —
  // part of the baseline's non-constant worst case.
  for (;;) {
    const int e = oldest_class();
    if (e < 0) return;
    const Bucket& b = classes_[static_cast<std::size_t>(e)].front();
    if (b.newest_pos + window_ > pos_) return;
    total_ -= std::uint64_t{1} << e;
    classes_[static_cast<std::size_t>(e)].pop_front();
  }
}

void EhSum::update(std::uint64_t value) {
  assert(value <= max_value_);
  ++pos_;
  expire();
  last_merges_ = 0;
  if (value == 0) return;
  total_ += value;

  // "Directly compute the EH resulting from v insertions of value 1":
  // v virtual unit buckets enter class 0; each class merges pairs from its
  // oldest end until it holds k or k+1 buckets, carrying the merged pairs
  // upward. Virtual buckets (all stamped with the current position) are
  // counted arithmetically, so a value of 2^30 costs O(log) work, while
  // the EH invariant — every class below the top holds >= k buckets — is
  // maintained exactly as v unit insertions would.
  std::uint64_t carry = value;  // virtual size-2^e buckets entering class e
  int merges = 0;
  for (std::size_t e = 0; e + 1 < classes_.size(); ++e) {
    auto& cls = classes_[e];
    const std::uint64_t n = cls.size() + carry;
    if (n <= k_ + 1) {
      // No overflow: materialize the (few) remaining virtual buckets.
      for (std::uint64_t i = 0; i < carry; ++i) {
        cls.push_back(Bucket{pos_, next_order_++});
      }
      carry = 0;
      break;
    }
    const std::uint64_t m = (n - k_) / 2;  // leaves n - 2m in {k, k+1}

    // Merges consume the 2m oldest slots: real buckets first, then
    // virtual ones.
    const std::uint64_t taken_real =
        std::min<std::uint64_t>(2 * m, cls.size());
    std::uint64_t produced_explicit = 0;
    // Real-real pairs: the merged bucket keeps the newer member's stamp
    // and is appended to the next class (it is newer than everything
    // already there, by the sizes-nondecreasing-with-age invariant).
    while (produced_explicit * 2 + 1 < taken_real) {
      cls.pop_front();
      const Bucket newer = cls.front();
      cls.pop_front();
      classes_[e + 1].push_back(newer);
      ++produced_explicit;
    }
    std::uint64_t virtual_consumed = 2 * m - taken_real;
    if (taken_real % 2 == 1) {
      // One straddling pair: oldest remaining real with a virtual bucket;
      // the virtual member is newer, so the result is stamped now.
      cls.pop_front();
      classes_[e + 1].push_back(Bucket{pos_, next_order_++});
      ++produced_explicit;
      // virtual_consumed already accounts for the virtual member:
      // 2m = taken_real + virtual_consumed.
    }
    // Pure virtual-virtual merges carry upward arithmetically.
    const std::uint64_t mvv = m - produced_explicit;
    // Virtual buckets left at this class (not merged): materialize.
    const std::uint64_t leftover = carry - virtual_consumed;
    assert(cls.size() + leftover <= k_ + 1);
    for (std::uint64_t i = 0; i < leftover; ++i) {
      cls.push_back(Bucket{pos_, next_order_++});
    }
    // Instrumentation: actual per-update work at this class (explicit
    // merges and materializations; the virtual-virtual carry is O(1)).
    merges += static_cast<int>(produced_explicit + leftover) + 1;
    carry = mvv;
    if (carry == 0) break;
  }
  assert(carry == 0 && "cascade must terminate within the class table");
  last_merges_ = merges;
  max_merges_ = std::max(max_merges_, merges);
}

double EhSum::query() const {
  if (pos_ <= window_) return static_cast<double>(total_);
  const int e = oldest_class();
  if (e < 0) return 0.0;
  const double oldest_size = static_cast<double>(std::uint64_t{1} << e);
  if (oldest_size <= 1.0) return static_cast<double>(total_);
  return static_cast<double>(total_) - (oldest_size - 1.0) / 2.0;
}

std::size_t EhSum::bucket_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.size();
  return n;
}

std::uint64_t EhSum::space_bits() const noexcept {
  const std::uint64_t np =
      util::next_pow2_at_least(2 * window_ * (max_value_ ? max_value_ : 1));
  const std::uint64_t pos_bits = static_cast<std::uint64_t>(util::floor_log2(np));
  const std::uint64_t exp_bits =
      static_cast<std::uint64_t>(util::ceil_log2(pos_bits + 1));
  return bucket_count() * (pos_bits + exp_bits) + 2 * pos_bits;
}

}  // namespace waves::baseline
