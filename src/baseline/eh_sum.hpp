// Exponential Histogram for sums of bounded integers — the Datar et al.
// baseline for the sum wave (Sec. 3.3 of the paper).
//
// An item of value v is treated as v arrivals of 1; rather than performing
// v unit insertions, the EH resulting from them is computed directly by
// inserting the binary decomposition of v as up-to-log(R) buckets stamped
// with the item's position and canonicalizing with merges. This realizes
// the baseline's O(log N + log R) worst-case / O(log R / log N) amortized
// per-item cost that the sum wave's O(1) improves on; merge cascades are
// instrumented for experiment E6.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace waves::baseline {

class EhSum {
 public:
  /// @param inv_eps 1/eps as an integer (>= 1).
  /// @param window  maximum window size N (in items).
  /// @param max_value R; values are integers in [0..R].
  EhSum(std::uint64_t inv_eps, std::uint64_t window, std::uint64_t max_value);

  void update(std::uint64_t value);

  /// Estimate of the sum over the last N items; exact while pos <= N.
  [[nodiscard]] double query() const;

  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }
  [[nodiscard]] int last_update_merges() const noexcept { return last_merges_; }
  [[nodiscard]] int max_merges() const noexcept { return max_merges_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept;
  [[nodiscard]] std::uint64_t space_bits() const noexcept;

 private:
  struct Bucket {
    std::uint64_t newest_pos;
    std::uint64_t order;
  };

  void expire();
  [[nodiscard]] int oldest_class() const noexcept;

  std::uint64_t k_;
  std::uint64_t window_;
  std::uint64_t max_value_;
  std::uint64_t pos_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_order_ = 0;
  std::vector<std::deque<Bucket>> classes_;
  int last_merges_ = 0;
  int max_merges_ = 0;
};

}  // namespace waves::baseline
