// Query flight recorder: a fixed-size ring of per-fetch records on the
// referee client.
//
// Each networked fetch (one party, one round) contributes one FlightRecord:
// what came back (bytes, delta vs full, cache hit), what it cost
// (per-phase wall-clock durations, allocation count when the binary
// installs the alloc hook — see obs/alloc.hpp), and how it got there
// (attempts, reused connection). The ring answers "where did the last
// query's latency go" per party without a profiler, and is the measured
// footing for the E18 delta-path latency item: phases split client-side
// work (connect/handshake/send/decode/apply) from time blocked on the
// server (wait) and from retry backoff.
//
// Phase durations are disjoint and sum to ~total_s; total_s is measured
// independently around the whole fetch, so the sum-vs-total gap is the
// (small) unattributed remainder.
//
// Compiled to no-ops when WAVES_OBS_ENABLED is 0.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace waves::obs {

/// One networked fetch, as recorded by the referee client. Plain data in
/// both build modes so callers can fill it unconditionally.
struct FlightRecord {
  std::uint64_t trace_id = 0;  // trace this fetch belonged to (0 = none)
  std::uint32_t party = 0;
  std::string role;  // "count" | "distinct" | "total"
  bool ok = false;
  std::uint32_t attempts = 0;
  std::uint64_t bytes = 0;   // reply payload bytes (last attempt)
  std::uint64_t allocs = 0;  // allocations during the fetch (0 = no hook)
  bool reused_connection = false;
  bool delta_reply = false;
  bool delta_applied = false;
  bool cache_hit = false;
  // Disjoint per-phase wall-clock seconds (see header comment).
  double connect_s = 0.0;    // TCP connect + Hello send/await
  double send_s = 0.0;       // request encode + write
  double wait_s = 0.0;       // blocked on the server's reply frame
  double decode_s = 0.0;     // reply decode (payload -> structs)
  double apply_s = 0.0;      // delta apply + snapshot materialization
  double backoff_s = 0.0;    // retry sleeps across attempts
  double total_s = 0.0;      // whole fetch, measured independently
};

#if WAVES_OBS_ENABLED

/// Process-wide bounded ring of recent fetch records.
class FlightRecorder {
 public:
  static FlightRecorder& instance();
  static constexpr std::size_t kKeep = 128;

  void record(FlightRecord&& rec);
  /// Up to kKeep most recent records, oldest first.
  [[nodiscard]] std::vector<FlightRecord> recent() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::deque<FlightRecord> ring_;
};

#else  // WAVES_OBS_ENABLED == 0

class FlightRecorder {
 public:
  static FlightRecorder& instance() {
    static FlightRecorder r;
    return r;
  }
  static constexpr std::size_t kKeep = 128;
  void record(FlightRecord&&) {}
  [[nodiscard]] std::vector<FlightRecord> recent() const { return {}; }
  void clear() {}
};

#endif  // WAVES_OBS_ENABLED

/// `fetch trace=<hex16> party=<n> role=<r> ok=<0|1> ... total_s=<secs>` —
/// one line, the flight-recorder dump format shared by wavecli and tests.
[[nodiscard]] std::string flight_line(const FlightRecord& rec);

}  // namespace waves::obs
