#include "obs/monitor_obs.hpp"

namespace waves::obs {

const MonitorPartyObs& MonitorPartyObs::instance() {
  static Registry& reg = Registry::instance();
  static const MonitorPartyObs o{
      reg.counter("waves_monitor_subscribes_total"),
      reg.counter("waves_monitor_unsubscribes_total"),
      reg.counter("waves_monitor_push_checks_total"),
      reg.counter("waves_monitor_pushes_total"),
      reg.counter("waves_monitor_push_bytes_total"),
      reg.counter("waves_monitor_push_full_total"),
      reg.counter("waves_monitor_push_delta_total")};
  return o;
}

const MonitorHubObs& MonitorHubObs::instance() {
  static Registry& reg = Registry::instance();
  static const MonitorHubObs o{
      reg.counter("waves_monitor_hub_updates_total"),
      reg.counter("waves_monitor_hub_recomputes_total"),
      reg.counter("waves_monitor_hub_resyncs_total"),
      reg.counter("waves_monitor_hub_leg_reconnects_total"),
      reg.counter("waves_monitor_hub_protocol_errors_total"),
      reg.counter("waves_monitor_hub_watchers_total"),
      reg.counter("waves_monitor_hub_watcher_rejected_total"),
      reg.counter("waves_monitor_hub_watcher_updates_total"),
      reg.counter("waves_monitor_hub_watcher_evicted_total"),
      reg.counter("waves_monitor_hub_breaker_trips_total"),
      reg.counter("waves_monitor_hub_breaker_fast_fails_total"),
      reg.counter("waves_monitor_hub_breaker_probes_total"),
      reg.counter("waves_monitor_hub_breaker_closes_total")};
  return o;
}

}  // namespace waves::obs
