// Instrument bundles for the continuous-monitoring subsystem
// (src/monitor/ plus the push legs in src/net/server.cpp). Same shape as
// net_obs.hpp: the families live here so the exporters and
// docs/observability.md have one home for names.
//
// Party-side families (each waved / PartyServer push leg):
//   waves_monitor_subscribes_total     kSubscribe frames accepted
//   waves_monitor_unsubscribes_total   kUnsubscribe frames handled
//   waves_monitor_push_checks_total    drift checks that ran (the ticks)
//   waves_monitor_pushes_total         kPushUpdate frames written
//   waves_monitor_push_bytes_total     bytes in those frames (incl. header)
//   waves_monitor_push_full_total      pushes carrying a full body
//   waves_monitor_push_delta_total     pushes carrying a diff body
//
// Hub-side families (MonitorHub):
//   waves_monitor_hub_updates_total          pushes applied to a mirror
//   waves_monitor_hub_recomputes_total       merged-estimate recomputations
//   waves_monitor_hub_resyncs_total          generation bumps -> full rebase
//   waves_monitor_hub_leg_reconnects_total   party legs re-established
//   waves_monitor_hub_protocol_errors_total  hostile/undecodable pushes
//   waves_monitor_hub_watchers_total         watcher connections accepted
//   waves_monitor_hub_watcher_rejected_total watchers over the cap
//   waves_monitor_hub_watcher_updates_total  EstimateUpdate frames fanned out
//   waves_monitor_hub_watcher_evicted_total  slow watchers evicted when a
//                                            push overran the write budget
//
// Hub leg breaker families (per-party circuit breaker on the push legs;
// see docs/robustness.md "Self-healing fleet"):
//   waves_monitor_hub_breaker_trips_total      closed -> open transitions
//   waves_monitor_hub_breaker_fast_fails_total reconnects skipped while open
//   waves_monitor_hub_breaker_probes_total     half-open trial connects
//   waves_monitor_hub_breaker_closes_total     half-open -> closed recoveries
#pragma once

#include "obs/metrics.hpp"

namespace waves::obs {

struct MonitorPartyObs {
  const Counter& subscribes;
  const Counter& unsubscribes;
  const Counter& push_checks;
  const Counter& pushes;
  const Counter& push_bytes;
  const Counter& push_full;
  const Counter& push_delta;

  static const MonitorPartyObs& instance();
};

struct MonitorHubObs {
  const Counter& updates;
  const Counter& recomputes;
  const Counter& resyncs;
  const Counter& leg_reconnects;
  const Counter& protocol_errors;
  const Counter& watchers;
  const Counter& watcher_rejected;
  const Counter& watcher_updates;
  const Counter& watcher_evicted;
  const Counter& breaker_trips;
  const Counter& breaker_fast_fails;
  const Counter& breaker_probes;
  const Counter& breaker_closes;

  static const MonitorHubObs& instance();
};

}  // namespace waves::obs
