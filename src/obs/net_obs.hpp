// Instrument bundles for the TCP transport (src/net/).
//
// The metric families live here, next to the rest of the schema, so the
// exporters and docs/observability.md have one home for names; src/net/
// fetches the cached bundle and bumps plain counter references on its hot
// paths. With WAVES_OBS=OFF every member is the no-op Counter/Histogram
// from obs/metrics.hpp and the whole layer compiles away.
//
// Client families (the referee side):
//   waves_net_requests_total        logical fetches (one per party, round)
//   waves_net_attempts_total        connection attempts incl. retries
//   waves_net_retries_total         attempts after the first
//   waves_net_timeouts_total        attempts lost to the deadline
//   waves_net_connect_errors_total  refused/failed connects
//   waves_net_protocol_errors_total malformed or unexpected replies
//   waves_net_bytes_sent_total / waves_net_bytes_received_total
//   waves_net_request_seconds       per-fetch latency histogram
//
// Server families (each waved / PartyServer):
//   waves_net_server_connections_total
//   waves_net_server_requests_total
//   waves_net_server_frame_errors_total  malformed frames from peers
//   waves_net_server_bytes_sent_total / waves_net_server_bytes_received_total
#pragma once

#include "obs/metrics.hpp"

namespace waves::obs {

struct NetClientObs {
  const Counter& requests;
  const Counter& attempts;
  const Counter& retries;
  const Counter& timeouts;
  const Counter& connect_errors;
  const Counter& protocol_errors;
  const Counter& bytes_sent;
  const Counter& bytes_received;
  const Histogram& request_seconds;

  static const NetClientObs& instance();
};

struct NetServerObs {
  const Counter& connections;
  const Counter& requests;
  const Counter& frame_errors;
  const Counter& bytes_sent;
  const Counter& bytes_received;

  static const NetServerObs& instance();
};

}  // namespace waves::obs
