// Instrument bundles for the TCP transport (src/net/).
//
// The metric families live here, next to the rest of the schema, so the
// exporters and docs/observability.md have one home for names; src/net/
// fetches the cached bundle and bumps plain counter references on its hot
// paths. With WAVES_OBS=OFF every member is the no-op Counter/Histogram
// from obs/metrics.hpp and the whole layer compiles away.
//
// Client families (the referee side):
//   waves_net_requests_total        logical fetches (one per party, round)
//   waves_net_attempts_total        connection attempts incl. retries
//   waves_net_retries_total         attempts after the first
//   waves_net_timeouts_total        attempts lost to the deadline
//   waves_net_connect_errors_total  refused/failed connects
//   waves_net_protocol_errors_total malformed or unexpected replies
//   waves_net_bytes_sent_total / waves_net_bytes_received_total
//   waves_net_request_seconds       per-fetch latency histogram
//   waves_net_reconnects_total      keep-alive links re-established after
//                                   a socket error or server restart
//   waves_net_delta_replies_total   kDeltaReply answers applied to a mirror
//   waves_net_delta_full_total      delta-capable requests answered full
//                                   (bootstrap, stale cursor, or v2 server)
//   waves_net_snapshot_cache_hits_total / waves_net_snapshot_cache_misses_total
//                                   referee-side decoded-snapshot cache,
//                                   keyed (party, generation, cursor, n)
//   waves_net_shutdown_retries_total  fetches answered ErrCode::kShutdown
//                                   (party draining) and retried fast
//   waves_net_deadline_exhausted_total fetches abandoned because the
//                                   total_deadline budget ran out
//
// Client breaker families (per-endpoint circuit breaker; see
// docs/robustness.md "Self-healing fleet"):
//   waves_net_breaker_trips_total      closed -> open transitions
//   waves_net_breaker_fast_fails_total fetches failed fast while open
//   waves_net_breaker_probes_total     half-open trial fetches admitted
//   waves_net_breaker_closes_total     half-open -> closed recoveries
//
// Server families (each waved / PartyServer):
//   waves_net_server_connections_total
//   waves_net_server_requests_total
//   waves_net_server_frame_errors_total  malformed frames from peers
//   waves_net_server_bytes_sent_total / waves_net_server_bytes_received_total
//   waves_net_server_delta_replies_total     diff bodies served
//   waves_net_server_delta_full_total        full bodies under delta framing
//   waves_net_server_delta_unchanged_total   empty-body "unchanged" replies
//   waves_net_server_overload_rejected_total connections refused at the
//                                            max_connections cap (ErrCode
//                                            kOverloaded, then close)
//   waves_net_server_health_probes_total     kHealthRequest frames answered
//
// Event-loop families (the epoll/poll readiness core, net/event_loop.hpp):
//   waves_net_loop_wakeups_total        epoll_wait/poll returns
//   waves_net_loop_events_total         fd readiness events dispatched
//   waves_net_loop_timer_fires_total    timer-wheel entries fired
//   waves_net_loop_stalled_writes_total flushes left bytes queued (peer's
//                                       socket full — backpressure engaged)
//   waves_net_loop_queue_depth          worker-pool jobs queued, not started
//   waves_net_io_model                  info gauge: 1 = threads core,
//                                       2 = epoll core (IoModel values)
#pragma once

#include "obs/metrics.hpp"

namespace waves::obs {

struct NetClientObs {
  const Counter& requests;
  const Counter& attempts;
  const Counter& retries;
  const Counter& timeouts;
  const Counter& connect_errors;
  const Counter& protocol_errors;
  const Counter& bytes_sent;
  const Counter& bytes_received;
  const Histogram& request_seconds;
  const Counter& reconnects;
  const Counter& delta_replies;
  const Counter& delta_full;
  const Counter& snapshot_cache_hits;
  const Counter& snapshot_cache_misses;
  const Counter& shutdown_retries;
  const Counter& deadline_exhausted;
  const Counter& breaker_trips;
  const Counter& breaker_fast_fails;
  const Counter& breaker_probes;
  const Counter& breaker_closes;

  static const NetClientObs& instance();
};

struct NetServerObs {
  const Counter& connections;
  const Counter& requests;
  const Counter& frame_errors;
  const Counter& bytes_sent;
  const Counter& bytes_received;
  const Counter& delta_replies;
  const Counter& delta_full;
  const Counter& delta_unchanged;
  const Counter& overload_rejected;
  const Counter& health_probes;

  static const NetServerObs& instance();
};

struct NetLoopObs {
  const Counter& wakeups;
  const Counter& events;
  const Counter& timer_fires;
  const Counter& stalled_writes;
  const Gauge& queue_depth;
  const Gauge& io_model;

  static const NetLoopObs& instance();
};

}  // namespace waves::obs
