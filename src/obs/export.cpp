#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace waves::obs {

#if WAVES_OBS_ENABLED

namespace {

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string fmt_d(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// `family{labels} value\n`, omitting the braces when labels are empty.
void prom_line(std::string& out, std::string_view family,
               std::string_view labels, const std::string& value) {
  out.append(family);
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
  out.push_back(' ');
  out.append(value);
  out.push_back('\n');
}

// `last_family` must own its string: the sample vectors this is called
// over are per-section temporaries, and a dangling view into a freed (and
// reused) buffer can spuriously compare equal, swallowing a # TYPE line.
void prom_type(std::string& out, std::string_view family,
               std::string_view type, std::string* last_family) {
  if (*last_family == family) return;
  *last_family = family;
  out.append("# TYPE ");
  out.append(family);
  out.push_back(' ');
  out.append(type);
  out.push_back('\n');
}

/// Join labels with the `le` bound for histogram bucket lines.
std::string with_le(std::string_view labels, const std::string& le) {
  std::string out(labels);
  if (!out.empty()) out.push_back(',');
  out.append("le=\"");
  out.append(le);
  out.append("\"");
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

/// Labels are registry-controlled `k="v",k2="v2"` strings; re-emit them as
/// a JSON object.
std::string labels_json(std::string_view labels) {
  std::string out = "{";
  std::size_t at = 0;
  bool first = true;
  while (at < labels.size()) {
    const std::size_t eq = labels.find('=', at);
    if (eq == std::string_view::npos) break;
    const std::size_t open = labels.find('"', eq);
    const std::size_t close =
        open == std::string_view::npos ? open : labels.find('"', open + 1);
    if (close == std::string_view::npos) break;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(json_escape(labels.substr(at, eq - at)));
    out.append("\":\"");
    out.append(json_escape(labels.substr(open + 1, close - open - 1)));
    out.push_back('"');
    at = close + 1;
    if (at < labels.size() && labels[at] == ',') ++at;
  }
  out.push_back('}');
  return out;
}

std::string fmt_hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

std::string prometheus_text() {
  const Registry& reg = Registry::instance();
  std::string out;
  std::string last_family;

  for (const auto& c : reg.counters()) {
    prom_type(out, c.family, "counter", &last_family);
    prom_line(out, c.family, c.labels, fmt_u64(c.value));
  }
  for (const auto& g : reg.gauges()) {
    prom_type(out, g.family, "gauge", &last_family);
    prom_line(out, g.family, g.labels, fmt_d(g.value));
  }
  for (const auto& h : reg.histograms()) {
    prom_type(out, h.family, "histogram", &last_family);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      prom_line(out, h.family + "_bucket", with_le(h.labels, fmt_d(h.bounds[i])),
                fmt_u64(cum));
    }
    prom_line(out, h.family + "_bucket", with_le(h.labels, "+Inf"),
              fmt_u64(h.count));
    prom_line(out, h.family + "_sum", h.labels, fmt_d(h.sum));
    prom_line(out, h.family + "_count", h.labels, fmt_u64(h.count));
  }

  // Most recent referee-round (and other) spans, as gauges so standard
  // Prometheus tooling can scrape "what did the last round cost". The
  // per-name table is maintained by the tracer itself, so a burst of
  // concurrent rounds evicting the ring cannot drop a name from here.
  const auto spans = Tracer::instance().latest_per_name();
  if (!spans.empty()) {
    out.append("# TYPE waves_span_last_duration_seconds gauge\n");
    for (const auto& s : spans) {
      prom_line(out, "waves_span_last_duration_seconds",
                "span=\"" + s.name + "\"", fmt_d(s.duration_seconds));
    }
    out.append("# TYPE waves_span_last_attr gauge\n");
    for (const auto& s : spans) {
      for (const auto& [key, value] : s.attrs) {
        prom_line(out, "waves_span_last_attr",
                  "span=\"" + s.name + "\",attr=\"" + key + "\"",
                  fmt_d(value));
      }
    }
  }
  return out;
}

std::string json_text() {
  const Registry& reg = Registry::instance();
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& c : reg.counters()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"" + json_escape(c.family) +
               "\",\"labels\":" + labels_json(c.labels) +
               ",\"value\":" + fmt_u64(c.value) + "}");
  }
  out.append("],\"gauges\":[");
  first = true;
  for (const auto& g : reg.gauges()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"" + json_escape(g.family) +
               "\",\"labels\":" + labels_json(g.labels) +
               ",\"value\":" + fmt_d(g.value) + "}");
  }
  out.append("],\"histograms\":[");
  first = true;
  for (const auto& h : reg.histograms()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"" + json_escape(h.family) +
               "\",\"labels\":" + labels_json(h.labels) + ",\"bounds\":[");
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out.push_back(',');
      out.append(fmt_d(h.bounds[i]));
    }
    out.append("],\"counts\":[");
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out.push_back(',');
      out.append(fmt_u64(h.counts[i]));
    }
    out.append("],\"sum\":" + fmt_d(h.sum) +
               ",\"count\":" + fmt_u64(h.count) + "}");
  }
  out.append("],\"spans\":[");
  first = true;
  for (const auto& s : Tracer::instance().recent()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"id\":" + fmt_u64(s.id) + ",\"trace_id\":\"" +
               fmt_hex16(s.trace_id) + "\",\"parent_id\":" +
               fmt_u64(s.parent_id) + ",\"name\":\"" + json_escape(s.name) +
               "\",\"duration_seconds\":" + fmt_d(s.duration_seconds) +
               ",\"attrs\":{");
    for (std::size_t i = 0; i < s.attrs.size(); ++i) {
      if (i) out.push_back(',');
      out.append("\"" + json_escape(s.attrs[i].first) +
                 "\":" + fmt_d(s.attrs[i].second));
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

std::string trace_text(std::uint64_t trace_id) {
  const auto spans = trace_id == 0 ? Tracer::instance().recent()
                                   : Tracer::instance().for_trace(trace_id);
  std::string out;
  for (const auto& s : spans) {
    out.append("span trace=" + fmt_hex16(s.trace_id) +
               " id=" + fmt_u64(s.id) + " parent=" + fmt_u64(s.parent_id) +
               " name=" + s.name +
               " dur_s=" + fmt_d(s.duration_seconds));
    for (const auto& [key, value] : s.attrs) {
      out.append(" attr." + key + "=" + fmt_d(value));
    }
    out.push_back('\n');
  }
  return out;
}

#else  // WAVES_OBS_ENABLED == 0

std::string prometheus_text() {
  return "# waves observability compiled out (WAVES_OBS=OFF)\n";
}

std::string trace_text(std::uint64_t) {
  return "# waves observability compiled out (WAVES_OBS=OFF)\n";
}

std::string json_text() {
  return "{\"disabled\":true,\"counters\":[],\"gauges\":[],\"histograms\":[],"
         "\"spans\":[]}";
}

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
