#include "obs/trace.hpp"

namespace waves::obs {

#if WAVES_OBS_ENABLED

double Span::end() {
  if (owner_ == nullptr) return 0.0;
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  rec_.duration_seconds = dt;
  std::exchange(owner_, nullptr)->record(std::move(rec_));
  return dt;
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::record(SpanRecord&& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.id = next_id_++;
  ring_.push_back(std::move(rec));
  if (ring_.size() > kKeep) ring_.pop_front();
}

std::vector<SpanRecord> Tracer::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
