#include "obs/trace.hpp"

#include <algorithm>

namespace waves::obs {

#if WAVES_OBS_ENABLED

namespace {

// splitmix64 finalizer — cheap, well-mixed; good enough to make trace ids
// from different processes started in the same millisecond distinct.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double Span::end() {
  if (owner_ == nullptr) return 0.0;
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  rec_.duration_seconds = dt;
  std::exchange(owner_, nullptr)->record(std::move(rec_));
  return dt;
}

std::vector<SpanRecord> SpanLog::latest_per_name() const {
  std::vector<SpanRecord> out;
  out.reserve(latest_by_name_.size());
  for (const auto& [name, rec] : latest_by_name_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.name < b.name;
            });
  return out;
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Span Tracer::start(std::string_view name, TraceContext ctx) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  return Span(this, name, id, ctx);
}

Span Tracer::start_trace(std::string_view name) {
  return start(name, TraceContext{new_trace_id(), 0});
}

namespace {
thread_local TraceContext tl_current{};
}  // namespace

Span Tracer::start_auto(std::string_view name) {
  const TraceContext ctx = current();
  return ctx ? start(name, ctx) : start_trace(name);
}

TraceContext Tracer::current() noexcept { return tl_current; }

void Tracer::set_current(TraceContext ctx) noexcept { tl_current = ctx; }

std::uint64_t Tracer::new_trace_id() {
  std::lock_guard<std::mutex> lock(mu_);
  if (trace_seed_ == 0) {
    // Per-process seed: wall-clock ticks mixed with this Tracer's address
    // (ASLR) so two clients started together still mint distinct traces.
    const auto ticks = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    trace_seed_ = mix64(ticks ^ reinterpret_cast<std::uintptr_t>(this));
  }
  std::uint64_t id = 0;
  do {
    id = mix64(trace_seed_++);
  } while (id == 0);
  return id;
}

void Tracer::record(SpanRecord&& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rec.id == 0) rec.id = next_id_++;
  log_.push(std::move(rec));
}

std::vector<SpanRecord> Tracer::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.recent();
}

std::vector<SpanRecord> Tracer::for_trace(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.for_trace(trace_id);
}

std::vector<SpanRecord> Tracer::latest_per_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.latest_per_name();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.clear();
}

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
