// Opt-in allocation counting for profiling the query path.
//
// The obs library itself never overrides operator new — that would force
// the hook on every binary linking waves. Instead, binaries that want
// allocation profiling (wavecli, bench_query) include tools/alloc_hook.hpp,
// whose global operator new/delete overrides call note_alloc(). Library
// code measures windows with AllocScope; in a binary without the hook the
// count stays 0 and every scope reads 0 — a recognizable "not wired up"
// value rather than a misleading one.
//
// note_alloc() is called from inside operator new: it must not allocate,
// lock, or touch anything but the relaxed atomic.
//
// Compiled to no-ops when WAVES_OBS_ENABLED is 0.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"

namespace waves::obs {

#if WAVES_OBS_ENABLED

namespace detail {
// C++20 constinit inline variables: zero-initialized before any dynamic
// init, so hooks firing during static construction are safe. The global
// counter feeds process-wide deltas (bench loops); the thread-local one
// lets AllocScope attribute allocations to the calling thread even while
// fetch_all's worker threads allocate concurrently.
inline constinit std::atomic<std::uint64_t> g_alloc_count{0};
inline constinit thread_local std::uint64_t t_alloc_count = 0;
}  // namespace detail

/// Called by the opt-in operator new hook on every allocation.
inline void note_alloc() noexcept {
  detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  ++detail::t_alloc_count;
}

/// Process-wide allocation count since start (0 if no hook is installed).
[[nodiscard]] inline std::uint64_t alloc_count() noexcept {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

/// This thread's allocation count since thread start (0 without the hook).
[[nodiscard]] inline std::uint64_t thread_alloc_count() noexcept {
  return detail::t_alloc_count;
}

/// RAII window over the *calling thread's* allocation counter, so a
/// per-fetch measurement stays honest while sibling fanout threads
/// allocate concurrently. Construct and read on the same thread.
class AllocScope {
 public:
  AllocScope() noexcept : start_(thread_alloc_count()) {}
  /// Allocations on this thread since construction.
  [[nodiscard]] std::uint64_t allocs() const noexcept {
    return thread_alloc_count() - start_;
  }

 private:
  std::uint64_t start_;
};

#else  // WAVES_OBS_ENABLED == 0

inline void note_alloc() noexcept {}
[[nodiscard]] inline std::uint64_t alloc_count() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t thread_alloc_count() noexcept { return 0; }

class AllocScope {
 public:
  [[nodiscard]] std::uint64_t allocs() const noexcept { return 0; }
};

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
