#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace waves::obs {

namespace {

constexpr double kLatencyBuckets[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                      1e-2, 1e-1, 1.0,  10.0};
constexpr double kBytesBuckets[] = {64,    256,    1024,    4096,   16384,
                                    65536, 262144, 1048576, 4194304};
constexpr double kSizeBuckets[] = {1,    4,    16,    64,    256,
                                   1024, 4096, 16384, 65536, 262144};

}  // namespace

std::span<const double> latency_buckets() { return kLatencyBuckets; }
std::span<const double> bytes_buckets() { return kBytesBuckets; }
std::span<const double> size_buckets() { return kSizeBuckets; }

#if WAVES_OBS_ENABLED

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) const noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not yet everywhere: CAS loop.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

HistogramSample Histogram::sample() const {
  HistogramSample s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.sum = sum();
  s.count = count();
  return s;
}

void Histogram::reset() const noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(std::string_view family, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{std::string(family), std::string(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view family, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{std::string(family), std::string(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view family,
                               std::string_view labels,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{std::string(family), std::string(labels)}];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::vector<CounterSample> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    out.push_back(CounterSample{key.first, key.second, c->value()});
  }
  return out;
}

std::vector<GaugeSample> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    out.push_back(GaugeSample{key.first, key.second, g->value()});
  }
  return out;
}

std::vector<HistogramSample> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    HistogramSample s = h->sample();
    s.family = key.first;
    s.labels = key.second;
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

namespace {

std::string wave_label(const char* wave) {
  return std::string("wave=\"") + wave + "\"";
}

}  // namespace

WaveIngestObs::WaveIngestObs(const char* wave) {
  Registry& reg = Registry::instance();
  const std::string labels = wave_label(wave);
  items_c_ = &reg.counter("waves_ingest_items_total", labels);
  promotions_c_ = &reg.counter("waves_level_promotions_total", labels);
  expiries_c_ = &reg.counter("waves_expiries_total", labels);
  evictions_c_ = &reg.counter("waves_evictions_total", labels);
  refreshes_c_ = &reg.counter("waves_value_refreshes_total", labels);
  snapshot_h_ =
      &reg.histogram("waves_snapshot_items", labels, size_buckets());
}

void WaveIngestObs::flush(std::uint64_t items_observed) const {
  // Deltas, not absolutes: many waves of the same kind share each counter.
  items_c_->add(items_observed - flushed_items_);
  promotions_c_->add(promotions_ - flushed_promotions_);
  expiries_c_->add(expiries_ - flushed_expiries_);
  evictions_c_->add(evictions_ - flushed_evictions_);
  refreshes_c_->add(refreshes_ - flushed_refreshes_);
  flushed_items_ = items_observed;
  flushed_promotions_ = promotions_;
  flushed_expiries_ = expiries_;
  flushed_evictions_ = evictions_;
  flushed_refreshes_ = refreshes_;
}

void WaveIngestObs::observe_snapshot_size(std::size_t n) const {
  snapshot_h_->observe(static_cast<double>(n));
}

namespace {

int next_party_id() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

PartyObs::PartyObs(const char* kind) : id_(next_party_id()) {
  Registry& reg = Registry::instance();
  const std::string labels = std::string("kind=\"") + kind + "\",party=\"" +
                             std::to_string(id_) + "\"";
  items_c_ = &reg.counter("waves_party_items_total", labels);
  contended_c_ = &reg.counter("waves_party_lock_contended_total", labels);
  wait_h_ = &reg.histogram("waves_party_lock_wait_seconds", labels,
                           latency_buckets());
  space_g_ = &reg.gauge("waves_party_space_bits", labels);
}

void PartyObs::lock_waited(double seconds) const {
  contended_c_->add();
  wait_h_->observe(seconds);
}

void PartyObs::flush(std::uint64_t items_observed,
                     std::uint64_t space_bits) const {
  items_c_->add(items_observed - flushed_items_);
  flushed_items_ = items_observed;
  space_g_->set(static_cast<double>(space_bits));
}

#else  // WAVES_OBS_ENABLED == 0

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
