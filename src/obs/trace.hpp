// Lightweight span tracer for referee query rounds.
//
// A Span measures one bounded operation (steady-clock duration) and carries
// a small set of numeric attributes (parties contacted, messages, encoded
// bytes, decode failures). Finished spans land in a bounded SpanLog ring
// that the exporters read — answering "what did the last referee round
// cost" without a debugger. Spans are for the cold query path: starting or
// recording one takes a mutex; never put a Span on a per-item path.
//
// Cross-process traces: a span may join a trace via a TraceContext — a
// 64-bit trace id plus the parent span's id. The referee client mints a
// trace id per query round and carries the context over the wire (see
// net/protocol.hpp, SnapshotRequest extension tag 2), so party-side server
// spans land in their local SpanLog tagged with the same trace id and can
// be stitched back together by `wavecli query --trace`.
//
// Compiled to no-ops when WAVES_OBS_ENABLED is 0 (see obs/metrics.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace waves::obs {

/// Identifies a position in a (possibly cross-process) trace: the trace a
/// span belongs to and the span it hangs under. trace_id == 0 means "no
/// trace" — the span is a local root. Plain data in both build modes so
/// protocol code can carry it unconditionally.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  explicit operator bool() const noexcept { return trace_id != 0; }
};

/// A finished span as stored in the span log.
struct SpanRecord {
  std::uint64_t id = 0;        // span id, unique within this process
  std::uint64_t trace_id = 0;  // 0 = not part of a propagated trace
  std::uint64_t parent_id = 0; // parent span id, 0 = root
  std::string name;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, double>> attrs;
};

#if WAVES_OBS_ENABLED

class Tracer;

/// Live span handle. end() (or destruction) records it with the tracer and
/// returns the measured duration in seconds.
class Span {
 public:
  Span(Span&& o) noexcept
      : owner_(std::exchange(o.owner_, nullptr)),
        t0_(o.t0_),
        rec_(std::move(o.rec_)) {}
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void set(std::string_view key, double value) {
    rec_.attrs.emplace_back(std::string(key), value);
  }
  /// Context for child spans (same trace — or none — parented here). Valid
  /// from construction: span ids are assigned at start, not at end.
  [[nodiscard]] TraceContext context() const noexcept {
    return {rec_.trace_id, rec_.id};
  }
  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return rec_.trace_id;
  }
  /// Idempotent; returns the duration (0 if already ended or disowned).
  double end();

 private:
  friend class Tracer;
  Span(Tracer* owner, std::string_view name, std::uint64_t id,
       TraceContext ctx)
      : owner_(owner) {
    rec_.name = name;
    rec_.id = id;
    rec_.trace_id = ctx.trace_id;
    rec_.parent_id = ctx.parent_span_id;
    t0_ = std::chrono::steady_clock::now();
  }

  Tracer* owner_;
  std::chrono::steady_clock::time_point t0_;
  SpanRecord rec_;
};

/// Bounded ring of finished spans plus two indexes that survive ring
/// eviction: a per-name "latest" table (feeding the waves_span_* gauges —
/// concurrent rounds can no longer push each other's names out) and
/// trace-id lookup over the ring. Not thread-safe by itself; Tracer wraps
/// every access in its mutex.
class SpanLog {
 public:
  static constexpr std::size_t kKeep = 256;

  void push(SpanRecord&& rec) {
    latest_by_name_[rec.name] = rec;
    ring_.push_back(std::move(rec));
    if (ring_.size() > kKeep) ring_.pop_front();
  }

  [[nodiscard]] std::vector<SpanRecord> recent() const {
    return {ring_.begin(), ring_.end()};
  }

  /// All retained spans of one trace, oldest first.
  [[nodiscard]] std::vector<SpanRecord> for_trace(
      std::uint64_t trace_id) const {
    std::vector<SpanRecord> out;
    for (const auto& r : ring_)
      if (r.trace_id == trace_id) out.push_back(r);
    return out;
  }

  /// Most recent finished span per name, sorted by name. Maintained
  /// incrementally: immune to ring eviction and interleaving.
  [[nodiscard]] std::vector<SpanRecord> latest_per_name() const;

  void clear() {
    ring_.clear();
    latest_by_name_.clear();
  }

 private:
  std::deque<SpanRecord> ring_;
  std::unordered_map<std::string, SpanRecord> latest_by_name_;
};

/// Process-wide span log.
class Tracer {
 public:
  static Tracer& instance();

  /// Root span outside any trace.
  [[nodiscard]] Span start(std::string_view name) {
    return start(name, TraceContext{});
  }
  /// Span joining an existing trace (or none, if ctx is empty).
  [[nodiscard]] Span start(std::string_view name, TraceContext ctx);
  /// Root span of a fresh trace: mints a new non-zero trace id.
  [[nodiscard]] Span start_trace(std::string_view name);
  /// Child of the calling thread's current context when one is installed
  /// (see TraceScope), otherwise the root of a fresh trace.
  [[nodiscard]] Span start_auto(std::string_view name);

  /// The calling thread's ambient trace context (empty when none).
  [[nodiscard]] static TraceContext current() noexcept;
  static void set_current(TraceContext ctx) noexcept;

  /// Mint a trace id without starting a span (unique within the process,
  /// seeded per-process so concurrent clients rarely collide).
  [[nodiscard]] std::uint64_t new_trace_id();

  /// Up to `kKeep` most recent finished spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> recent() const;
  /// Retained spans of one trace, oldest first.
  [[nodiscard]] std::vector<SpanRecord> for_trace(
      std::uint64_t trace_id) const;
  /// Most recent span per distinct name (survives ring eviction).
  [[nodiscard]] std::vector<SpanRecord> latest_per_name() const;
  void clear();

  static constexpr std::size_t kKeep = SpanLog::kKeep;

 private:
  friend class Span;
  void record(SpanRecord&& rec);

  mutable std::mutex mu_;
  SpanLog log_;
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_seed_ = 0;
};

#else  // WAVES_OBS_ENABLED == 0

class Span {
 public:
  void set(std::string_view, double) {}
  [[nodiscard]] TraceContext context() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return 0; }
  double end() { return 0.0; }
};

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  [[nodiscard]] Span start(std::string_view) { return Span{}; }
  [[nodiscard]] Span start(std::string_view, TraceContext) { return Span{}; }
  [[nodiscard]] Span start_trace(std::string_view) { return Span{}; }
  [[nodiscard]] Span start_auto(std::string_view) { return Span{}; }
  [[nodiscard]] static TraceContext current() noexcept { return {}; }
  static void set_current(TraceContext) noexcept {}
  [[nodiscard]] std::uint64_t new_trace_id() { return 0; }
  [[nodiscard]] std::vector<SpanRecord> recent() const { return {}; }
  [[nodiscard]] std::vector<SpanRecord> for_trace(std::uint64_t) const {
    return {};
  }
  [[nodiscard]] std::vector<SpanRecord> latest_per_name() const { return {}; }
  void clear() {}
};

#endif  // WAVES_OBS_ENABLED

/// RAII guard installing an ambient trace context for the calling thread:
/// spans started with Tracer::start_auto inside the scope become children
/// of `ctx` instead of roots of fresh traces. With WAVES_OBS=OFF the guard
/// is inert. Thread-scoped: hand the context to worker threads explicitly.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx) : prev_(Tracer::current()) {
    Tracer::set_current(ctx);
  }
  ~TraceScope() { Tracer::set_current(prev_); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace waves::obs
