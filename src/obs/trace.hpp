// Lightweight span tracer for referee query rounds.
//
// A Span measures one bounded operation (steady-clock duration) and carries
// a small set of numeric attributes (parties contacted, messages, encoded
// bytes, decode failures). Finished spans land in a fixed-size ring of
// recent records that the exporters read — answering "what did the last
// referee round cost" without a debugger. Spans are for the cold query
// path: recording one takes a mutex; never put a Span on a per-item path.
//
// Compiled to no-ops when WAVES_OBS_ENABLED is 0 (see obs/metrics.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace waves::obs {

/// A finished span as stored in the tracer ring.
struct SpanRecord {
  std::uint64_t id = 0;
  std::string name;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, double>> attrs;
};

#if WAVES_OBS_ENABLED

class Tracer;

/// Live span handle. end() (or destruction) records it with the tracer and
/// returns the measured duration in seconds.
class Span {
 public:
  Span(Span&& o) noexcept
      : owner_(std::exchange(o.owner_, nullptr)),
        t0_(o.t0_),
        rec_(std::move(o.rec_)) {}
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void set(std::string_view key, double value) {
    rec_.attrs.emplace_back(std::string(key), value);
  }
  /// Idempotent; returns the duration (0 if already ended or disowned).
  double end();

 private:
  friend class Tracer;
  Span(Tracer* owner, std::string_view name) : owner_(owner) {
    rec_.name = name;
    t0_ = std::chrono::steady_clock::now();
  }

  Tracer* owner_;
  std::chrono::steady_clock::time_point t0_;
  SpanRecord rec_;
};

/// Process-wide ring of recent spans.
class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] Span start(std::string_view name) { return Span(this, name); }

  /// Up to `kKeep` most recent finished spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> recent() const;
  void clear();

  static constexpr std::size_t kKeep = 64;

 private:
  friend class Span;
  void record(SpanRecord&& rec);

  mutable std::mutex mu_;
  std::deque<SpanRecord> ring_;
  std::uint64_t next_id_ = 1;
};

#else  // WAVES_OBS_ENABLED == 0

class Span {
 public:
  void set(std::string_view, double) {}
  double end() { return 0.0; }
};

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  [[nodiscard]] Span start(std::string_view) { return Span{}; }
  [[nodiscard]] std::vector<SpanRecord> recent() const { return {}; }
  void clear() {}
};

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
