// Exporters over the metrics registry and span tracer.
//
// Two formats, same data:
//   * Prometheus text exposition (counters/gauges/histograms, plus the most
//     recent span per name surfaced as waves_span_* gauges);
//   * JSON — one object with "counters"/"gauges"/"histograms"/"spans"
//     arrays, for trajectory recording and programmatic consumption.
//   * trace text — one line per retained span (key=value pairs), optionally
//     filtered to a single trace id; this is what a kMetricsRequest with
//     format=trace returns, and what `wavecli query --trace` stitches.
//
// With WAVES_OBS=OFF all return a single comment/stub noting the layer is
// compiled out.
#pragma once

#include <cstdint>
#include <string>

namespace waves::obs {

[[nodiscard]] std::string prometheus_text();
[[nodiscard]] std::string json_text();

/// One `span trace=<hex16> id=<n> parent=<n> name=<name> dur_s=<secs>
/// [attr.<key>=<value>...]` line per retained span, oldest first.
/// trace_id == 0 returns every retained span; otherwise only that trace's.
[[nodiscard]] std::string trace_text(std::uint64_t trace_id);

}  // namespace waves::obs
