// Exporters over the metrics registry and span tracer.
//
// Two formats, same data:
//   * Prometheus text exposition (counters/gauges/histograms, plus the most
//     recent span per name surfaced as waves_span_* gauges);
//   * JSON — one object with "counters"/"gauges"/"histograms"/"spans"
//     arrays, for trajectory recording and programmatic consumption.
//
// With WAVES_OBS=OFF both return a single comment/stub noting the layer is
// compiled out.
#pragma once

#include <string>

namespace waves::obs {

[[nodiscard]] std::string prometheus_text();
[[nodiscard]] std::string json_text();

}  // namespace waves::obs
