#include "obs/net_obs.hpp"

namespace waves::obs {

const NetClientObs& NetClientObs::instance() {
  static Registry& reg = Registry::instance();
  static const NetClientObs o{
      reg.counter("waves_net_requests_total"),
      reg.counter("waves_net_attempts_total"),
      reg.counter("waves_net_retries_total"),
      reg.counter("waves_net_timeouts_total"),
      reg.counter("waves_net_connect_errors_total"),
      reg.counter("waves_net_protocol_errors_total"),
      reg.counter("waves_net_bytes_sent_total"),
      reg.counter("waves_net_bytes_received_total"),
      reg.histogram("waves_net_request_seconds", {}, latency_buckets()),
      reg.counter("waves_net_reconnects_total"),
      reg.counter("waves_net_delta_replies_total"),
      reg.counter("waves_net_delta_full_total"),
      reg.counter("waves_net_snapshot_cache_hits_total"),
      reg.counter("waves_net_snapshot_cache_misses_total"),
      reg.counter("waves_net_shutdown_retries_total"),
      reg.counter("waves_net_deadline_exhausted_total"),
      reg.counter("waves_net_breaker_trips_total"),
      reg.counter("waves_net_breaker_fast_fails_total"),
      reg.counter("waves_net_breaker_probes_total"),
      reg.counter("waves_net_breaker_closes_total")};
  return o;
}

const NetServerObs& NetServerObs::instance() {
  static Registry& reg = Registry::instance();
  static const NetServerObs o{
      reg.counter("waves_net_server_connections_total"),
      reg.counter("waves_net_server_requests_total"),
      reg.counter("waves_net_server_frame_errors_total"),
      reg.counter("waves_net_server_bytes_sent_total"),
      reg.counter("waves_net_server_bytes_received_total"),
      reg.counter("waves_net_server_delta_replies_total"),
      reg.counter("waves_net_server_delta_full_total"),
      reg.counter("waves_net_server_delta_unchanged_total"),
      reg.counter("waves_net_server_overload_rejected_total"),
      reg.counter("waves_net_server_health_probes_total")};
  return o;
}

const NetLoopObs& NetLoopObs::instance() {
  static Registry& reg = Registry::instance();
  static const NetLoopObs o{reg.counter("waves_net_loop_wakeups_total"),
                            reg.counter("waves_net_loop_events_total"),
                            reg.counter("waves_net_loop_timer_fires_total"),
                            reg.counter("waves_net_loop_stalled_writes_total"),
                            reg.gauge("waves_net_loop_queue_depth"),
                            reg.gauge("waves_net_io_model")};
  return o;
}

}  // namespace waves::obs
