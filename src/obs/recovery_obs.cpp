#include "obs/recovery_obs.hpp"

namespace waves::obs {

const RecoveryObs& RecoveryObs::instance() {
  static Registry& reg = Registry::instance();
  static const RecoveryObs o{
      reg.counter("waves_recovery_checkpoints_written_total"),
      reg.counter("waves_recovery_checkpoints_restored_total"),
      reg.counter("waves_recovery_checkpoints_rejected_total"),
      reg.counter("waves_recovery_checkpoint_bytes_total"),
      reg.counter("waves_recovery_generation_mismatch_total")};
  return o;
}

const FaultObs& FaultObs::instance() {
  static Registry& reg = Registry::instance();
  static const FaultObs o{
      reg.counter("waves_faults_injected_total", "kind=\"drop\""),
      reg.counter("waves_faults_injected_total", "kind=\"delay\""),
      reg.counter("waves_faults_injected_total", "kind=\"truncate\""),
      reg.counter("waves_faults_injected_total", "kind=\"corrupt\""),
      reg.counter("waves_faults_injected_total", "kind=\"reset\"")};
  return o;
}

}  // namespace waves::obs
