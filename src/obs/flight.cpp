#include "obs/flight.hpp"

#include <cinttypes>
#include <cstdio>

namespace waves::obs {

#if WAVES_OBS_ENABLED

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder r;
  return r;
}

void FlightRecorder::record(FlightRecord&& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(rec));
  if (ring_.size() > kKeep) ring_.pop_front();
}

std::vector<FlightRecord> FlightRecorder::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

#endif  // WAVES_OBS_ENABLED

std::string flight_line(const FlightRecord& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "fetch trace=%016" PRIx64 " party=%" PRIu32 " role=%s ok=%d"
      " attempts=%" PRIu32 " bytes=%" PRIu64 " allocs=%" PRIu64
      " reused=%d delta=%d applied=%d cache_hit=%d"
      " connect_s=%.6f send_s=%.6f wait_s=%.6f decode_s=%.6f apply_s=%.6f"
      " backoff_s=%.6f total_s=%.6f",
      r.trace_id, r.party, r.role.c_str(), r.ok ? 1 : 0, r.attempts, r.bytes,
      r.allocs, r.reused_connection ? 1 : 0, r.delta_reply ? 1 : 0,
      r.delta_applied ? 1 : 0, r.cache_hit ? 1 : 0, r.connect_s, r.send_s,
      r.wait_s, r.decode_s, r.apply_s, r.backoff_s, r.total_s);
  return buf;
}

}  // namespace waves::obs
