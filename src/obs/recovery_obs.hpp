// Instrument bundles for crash recovery (src/recovery/) and the fault-
// injection layer (src/net/fault.hpp).
//
// Families (all no-ops under WAVES_OBS=OFF, like the rest of the schema):
//   waves_recovery_checkpoints_written_total   sealed checkpoints persisted
//   waves_recovery_checkpoints_restored_total  successful restores
//   waves_recovery_checkpoints_rejected_total  envelopes failing magic/
//                                              version/kind/CRC validation
//   waves_recovery_checkpoint_bytes_total      sealed bytes written
//   waves_recovery_generation_mismatch_total   snapshots discarded because
//                                              the party's generation moved
//                                              mid-round (stale state)
//   waves_faults_injected_total{kind="..."}    injected socket faults, by
//                                              kind (drop/delay/truncate/
//                                              corrupt/reset)
#pragma once

#include "obs/metrics.hpp"

namespace waves::obs {

struct RecoveryObs {
  const Counter& checkpoints_written;
  const Counter& checkpoints_restored;
  const Counter& checkpoints_rejected;
  const Counter& checkpoint_bytes;
  const Counter& generation_mismatches;

  static const RecoveryObs& instance();
};

struct FaultObs {
  const Counter& drop;
  const Counter& delay;
  const Counter& truncate;
  const Counter& corrupt;
  const Counter& reset;

  static const FaultObs& instance();
};

}  // namespace waves::obs
