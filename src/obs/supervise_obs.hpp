// Instrument bundles for the process supervisor (src/supervise/). Same
// shape as net_obs.hpp: the families live here so the exporters and
// docs/observability.md have one home for names.
//
// Supervisor families (the `wavecli fleet` process):
//   waves_supervise_spawns_total          waved processes fork/exec'd
//                                         (initial launches and restarts)
//   waves_supervise_restarts_total        restarts of a crashed or
//                                         unresponsive party
//   waves_supervise_crashloops_total      parties marked failed after N
//                                         restarts inside the M-second
//                                         crash-loop window
//   waves_supervise_probes_total          health probes attempted
//   waves_supervise_probe_failures_total  probes that timed out, failed to
//                                         connect, or returned garbage
#pragma once

#include "obs/metrics.hpp"

namespace waves::obs {

struct SuperviseObs {
  const Counter& spawns;
  const Counter& restarts;
  const Counter& crashloops;
  const Counter& probes;
  const Counter& probe_failures;

  static const SuperviseObs& instance();
};

}  // namespace waves::obs
