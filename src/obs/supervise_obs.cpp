#include "obs/supervise_obs.hpp"

namespace waves::obs {

const SuperviseObs& SuperviseObs::instance() {
  static Registry& reg = Registry::instance();
  static const SuperviseObs o{
      reg.counter("waves_supervise_spawns_total"),
      reg.counter("waves_supervise_restarts_total"),
      reg.counter("waves_supervise_crashloops_total"),
      reg.counter("waves_supervise_probes_total"),
      reg.counter("waves_supervise_probe_failures_total")};
  return o;
}

}  // namespace waves::obs
