// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with relaxed-atomic hot paths and zero heap allocation per
// update. Continuous-monitoring systems over distributed sliding windows
// treat per-round communication and per-party state as first-class measured
// quantities; this layer gives libwaves the same footing without touching
// the paper-faithful space/time accounting: configure with -DWAVES_OBS=OFF
// and every hook below compiles to a no-op (verified by CI).
//
// Layering: obs depends on nothing but the standard library. The waves keep
// *plain* (non-atomic) pending tallies — they are single-writer under the
// party lock — and flush deltas into the shared atomic counters at query /
// snapshot boundaries, so the per-item ingest cost is an ordinary integer
// increment (<3% overhead, see bench_obs / docs/observability.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef WAVES_OBS_ENABLED
#define WAVES_OBS_ENABLED 1
#endif

namespace waves::obs {

inline constexpr bool kEnabled = WAVES_OBS_ENABLED != 0;

/// Shared bucket layouts (upper bounds; +Inf is implicit).
[[nodiscard]] std::span<const double> latency_buckets();  // 1us .. 10s
[[nodiscard]] std::span<const double> bytes_buckets();    // 64B .. 4MiB
[[nodiscard]] std::span<const double> size_buckets();     // 1 .. 262144 items

/// Point-in-time copies handed to the exporters.
struct CounterSample {
  std::string family, labels;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string family, labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string family, labels;
  std::vector<double> bounds;          // finite upper bounds
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = +Inf)
  double sum = 0.0;
  std::uint64_t count = 0;
};

#if WAVES_OBS_ENABLED

/// Monotonic event count. Thread-safe; add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) const noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() const noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (space bits, feed rates).
class Gauge {
 public:
  void set(double v) const noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() const noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  mutable std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. observe() is a short bound scan plus relaxed
/// adds — no allocation, no locks. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v) const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] HistogramSample sample() const;
  void reset() const noexcept;

 private:
  std::vector<double> bounds_;
  mutable std::vector<std::atomic<std::uint64_t>> counts_;  // bounds+1
  mutable std::atomic<std::uint64_t> count_{0};
  mutable std::atomic<double> sum_{0.0};
};

/// Process-wide registry. Registration (name lookup) takes a mutex and is
/// meant to happen once per call site — cache the returned reference.
/// Returned references stay valid for the registry's lifetime; reset_values
/// zeroes values but never invalidates them.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view family, std::string_view labels = {});
  Gauge& gauge(std::string_view family, std::string_view labels = {});
  Histogram& histogram(std::string_view family, std::string_view labels,
                       std::span<const double> bounds);

  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;

  /// Zero every value, keeping all registrations (test isolation).
  void reset_values();

 private:
  using Key = std::pair<std::string, std::string>;  // (family, labels)
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// Wave-local ingest tally. The owning wave is single-writer (its party
/// holds a lock during update), so the pending fields are plain integers;
/// flush() pushes deltas into the global counters. All methods are const so
/// const query/snapshot paths can flush; the fields are mutable for the
/// same reason — the synchronization story is the owner's, not this
/// struct's.
class WaveIngestObs {
 public:
  /// @param wave label value for the waves_ingest_* families, e.g. "det".
  explicit WaveIngestObs(const char* wave);

  void on_promotion(std::uint64_t n = 1) const noexcept { promotions_ += n; }
  void on_expiry(std::uint64_t n = 1) const noexcept { expiries_ += n; }
  void on_eviction(std::uint64_t n = 1) const noexcept { evictions_ += n; }
  void on_refresh(std::uint64_t n = 1) const noexcept { refreshes_ += n; }

  /// Push pending deltas; `items_observed` is the wave's position counter.
  void flush(std::uint64_t items_observed) const;
  /// Record a party->referee snapshot's element count.
  void observe_snapshot_size(std::size_t n) const;

 private:
  const Counter* items_c_;
  const Counter* promotions_c_;
  const Counter* expiries_c_;
  const Counter* evictions_c_;
  const Counter* refreshes_c_;
  const Histogram* snapshot_h_;
  mutable std::uint64_t promotions_ = 0, expiries_ = 0, evictions_ = 0,
                        refreshes_ = 0;
  mutable std::uint64_t flushed_items_ = 0, flushed_promotions_ = 0,
                        flushed_expiries_ = 0, flushed_evictions_ = 0,
                        flushed_refreshes_ = 0;
};

/// Per-party instruments: item throughput, lock contention, and the space
/// gauge. Each construction takes a fresh process-wide party id so the
/// label answers "what is party 3 doing".
class PartyObs {
 public:
  /// @param kind label value, "count" or "distinct".
  explicit PartyObs(const char* kind);

  [[nodiscard]] int id() const noexcept { return id_; }
  /// Record a contended lock acquisition that waited `seconds`.
  void lock_waited(double seconds) const;
  /// Update the cumulative item counter and the space-bits gauge.
  void flush(std::uint64_t items_observed, std::uint64_t space_bits) const;

 private:
  int id_;
  const Counter* items_c_;
  const Counter* contended_c_;
  const Histogram* wait_h_;
  const Gauge* space_g_;
  mutable std::uint64_t flushed_items_ = 0;
};

#else  // WAVES_OBS_ENABLED == 0: every hook is an inline no-op.

class Counter {
 public:
  void add(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() const noexcept {}
};

class Gauge {
 public:
  void set(double) const noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() const noexcept {}
};

class Histogram {
 public:
  void observe(double) const noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double sum() const noexcept { return 0.0; }
  [[nodiscard]] HistogramSample sample() const { return {}; }
  void reset() const noexcept {}
};

class Registry {
 public:
  static Registry& instance();
  Counter& counter(std::string_view, std::string_view = {}) { return c_; }
  Gauge& gauge(std::string_view, std::string_view = {}) { return g_; }
  Histogram& histogram(std::string_view, std::string_view,
                       std::span<const double>) {
    return h_;
  }
  [[nodiscard]] std::vector<CounterSample> counters() const { return {}; }
  [[nodiscard]] std::vector<GaugeSample> gauges() const { return {}; }
  [[nodiscard]] std::vector<HistogramSample> histograms() const { return {}; }
  void reset_values() {}

 private:
  Counter c_;
  Gauge g_;
  Histogram h_;
};

class WaveIngestObs {
 public:
  explicit WaveIngestObs(const char*) {}
  void on_promotion(std::uint64_t = 1) const noexcept {}
  void on_expiry(std::uint64_t = 1) const noexcept {}
  void on_eviction(std::uint64_t = 1) const noexcept {}
  void on_refresh(std::uint64_t = 1) const noexcept {}
  void flush(std::uint64_t) const noexcept {}
  void observe_snapshot_size(std::size_t) const noexcept {}
};

class PartyObs {
 public:
  explicit PartyObs(const char*) {}
  [[nodiscard]] int id() const noexcept { return 0; }
  void lock_waited(double) const noexcept {}
  void flush(std::uint64_t, std::uint64_t) const noexcept {}
};

#endif  // WAVES_OBS_ENABLED

}  // namespace waves::obs
